//! Real-graph ingestion: pluggable dataset parsers, a binary CSR cache,
//! and radio topologies derived from parsed data.
//!
//! Every synthetic family in this crate draws its structure from a
//! generator; this module instead ingests *observed* topologies — the
//! irregular degree distributions and hub structure the paper's bounds are
//! sensitive to — and derives radio networks from them:
//!
//! * **Parsers** ([`parse_str`], [`load_graph`]): plain edge lists, SNAP
//!   exports (`#` comments, sparse ids remapped densely, self-loops and
//!   duplicate edges normalized away), and DIMACS (`c` comments,
//!   `p edge n m` header, 1-indexed `e u v` lines). Malformed input —
//!   self-loops in strict formats, out-of-range ids, empty files — yields
//!   a typed [`DatasetError`], never a panic. Comment lines may contain
//!   arbitrary unicode; CRLF line endings are accepted everywhere.
//! * **Binary CSR cache** ([`load_graph_cached`]): the first (cold) parse
//!   of a dataset writes its CSR arrays to
//!   `<cache>/datasets/<stem>-<hash>.csrbin`; later loads skip parsing and
//!   `Graph` construction entirely and reload the arrays in milliseconds.
//!   Entries are keyed on the source file's *content digest* (with a
//!   size + mtime fast path), so editing the dataset invalidates the
//!   cache; a checksum plus full CSR revalidation
//!   ([`Graph::from_csr_parts`]) means a torn or corrupted entry degrades
//!   to a cold parse, never to a wrong graph.
//! * **Derived topologies**: [`unit_disk_of_coords`] (transmission-range
//!   graphs over real coordinate files, grid-bucketed so million-point
//!   fields build in `O(n · deg)`), [`k_nearest`] sensor fields, and
//!   [`chung_lu`] power-law samplers matched to an observed degree
//!   sequence ([`resample_degrees`]) — each made connected by the same
//!   random-spanning-tree surrogate the synthetic families use.
//! * **The vendored samples** ([`SAMPLE_SOCIAL`], [`SAMPLE_ROADNET`],
//!   [`SAMPLE_ROADNET_COORDS`]): two tiny offline datasets under
//!   `datasets/` backing the `ds-*` members of
//!   [`crate::families::Family`]; [`family_files`] maps each dataset
//!   family to the files whose content digests its bench cells must be
//!   keyed on.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use ebc_radio::rng::node_rng;
use ebc_radio::{Graph, GraphError};
use rand::Rng;

use crate::random;

/// File name of the vendored SNAP-style social sample (power-law degrees).
pub const SAMPLE_SOCIAL: &str = "sample-social.txt";
/// File name of the vendored DIMACS road/sensor sample (near-planar).
pub const SAMPLE_ROADNET: &str = "sample-roadnet.gr";
/// File name of the vendored coordinate file paired with the road sample.
pub const SAMPLE_ROADNET_COORDS: &str = "sample-roadnet.co";

/// The vendored dataset files, in registry order.
pub const SAMPLE_FILES: [&str; 3] = [SAMPLE_SOCIAL, SAMPLE_ROADNET, SAMPLE_ROADNET_COORDS];

/// The dataset files backing one dataset-derived family (by the family's
/// display name), empty for synthetic families. Bench cells key their
/// cache entries on these files' content digests: a cell built from a
/// dataset must invalidate when the dataset file changes, exactly like a
/// source-crate edit.
pub fn family_files(family: &str) -> &'static [&'static str] {
    match family {
        "ds-social" | "ds-chung-lu" => &[SAMPLE_SOCIAL],
        "ds-roadnet" => &[SAMPLE_ROADNET],
        "ds-unit-disk" | "ds-knn" => &[SAMPLE_ROADNET_COORDS],
        _ => &[],
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Error ingesting a dataset file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// The file could not be read (or its metadata stat'ed).
    Io {
        /// The file involved.
        path: PathBuf,
        /// The underlying error, stringified.
        err: String,
    },
    /// The file contains no graph (no edges / no points).
    Empty {
        /// What was being parsed.
        what: String,
    },
    /// A line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// A strict format carried a self-loop (the radio model has none).
    SelfLoop {
        /// 1-based line number.
        line: usize,
        /// The looping vertex, as written in the file.
        id: usize,
    },
    /// A vertex id fell outside the declared range.
    IdOutOfRange {
        /// 1-based line number.
        line: usize,
        /// The offending id, as written in the file.
        id: usize,
        /// The declared vertex count.
        n: usize,
    },
    /// The parsed edges did not form a valid [`Graph`].
    Graph(GraphError),
}

impl core::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DatasetError::Io { path, err } => write!(f, "cannot read {}: {err}", path.display()),
            DatasetError::Empty { what } => write!(f, "{what} is empty"),
            DatasetError::Parse { line, msg } => write!(f, "line {line}: {msg}"),
            DatasetError::SelfLoop { line, id } => {
                write!(f, "line {line}: self-loop at vertex {id}")
            }
            DatasetError::IdOutOfRange { line, id, n } => {
                write!(f, "line {line}: vertex id {id} out of range for n = {n}")
            }
            DatasetError::Graph(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl std::error::Error for DatasetError {}

impl From<GraphError> for DatasetError {
    fn from(e: GraphError) -> Self {
        DatasetError::Graph(e)
    }
}

fn io_err(path: &Path, err: impl core::fmt::Display) -> DatasetError {
    DatasetError::Io {
        path: path.to_path_buf(),
        err: err.to_string(),
    }
}

// ---------------------------------------------------------------------------
// Parsers
// ---------------------------------------------------------------------------

/// The dataset text formats the ingestion layer understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetFormat {
    /// Plain whitespace-separated `u v` pairs, 0-indexed, `#`/`%`
    /// comments. Strict: self-loops are errors, ids are used as written
    /// (`n` = max id + 1).
    EdgeList,
    /// SNAP exports: `#` comment header, tab- or space-separated pairs.
    /// Lenient, as SNAP data demands: sparse ids are remapped densely (in
    /// ascending id order), self-loops dropped, duplicate and reversed
    /// edges merged.
    Snap,
    /// DIMACS: `c` comments, a `p <kind> <n> <m>` header, 1-indexed
    /// `e u v` (or `a u v`) edge lines. Strict: ids outside `1..=n`,
    /// self-loops, and edges before the header are errors.
    Dimacs,
}

/// A parsed dataset: a dense vertex range and a normalized edge list
/// (each edge once as `(lo, hi)`, sorted, duplicate-free).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedDataset {
    /// Number of vertices (ids are `0..n`).
    pub n: usize,
    /// Normalized undirected edges.
    pub edges: Vec<(u32, u32)>,
}

impl ParsedDataset {
    /// Builds the CSR [`Graph`].
    pub fn to_graph(&self) -> Result<Graph, DatasetError> {
        let edges: Vec<(usize, usize)> = self
            .edges
            .iter()
            .map(|&(u, v)| (u as usize, v as usize))
            .collect();
        Ok(Graph::from_edges(self.n, &edges)?)
    }
}

/// Strips one trailing `\r` so CRLF files parse like LF files.
fn clean(line: &str) -> &str {
    line.strip_suffix('\r').unwrap_or(line)
}

fn is_comment(line: &str, markers: &[char]) -> bool {
    match line.chars().next() {
        None => true, // blank
        Some(c) => markers.contains(&c),
    }
}

fn parse_id(tok: &str, line: usize) -> Result<usize, DatasetError> {
    let id: u64 = tok.parse().map_err(|_| DatasetError::Parse {
        line,
        msg: format!("expected a vertex id, got {tok:?}"),
    })?;
    if id >= u32::MAX as u64 {
        return Err(DatasetError::Parse {
            line,
            msg: format!("vertex id {id} exceeds the u32 id space"),
        });
    }
    Ok(id as usize)
}

/// Normalizes an edge multiset into the [`ParsedDataset`] form: `(lo,
/// hi)` orientation, sorted, deduplicated.
fn normalize(n: usize, mut edges: Vec<(u32, u32)>) -> ParsedDataset {
    for e in &mut edges {
        if e.0 > e.1 {
            *e = (e.1, e.0);
        }
    }
    edges.sort_unstable();
    edges.dedup();
    ParsedDataset { n, edges }
}

/// Parses `text` as `format`. See [`DatasetFormat`] for the per-format
/// strictness contract.
///
/// # Errors
///
/// Any malformed line yields a typed [`DatasetError`]; a file with no
/// edges yields [`DatasetError::Empty`].
pub fn parse_str(text: &str, format: DatasetFormat) -> Result<ParsedDataset, DatasetError> {
    match format {
        DatasetFormat::EdgeList => parse_edge_list(text),
        DatasetFormat::Snap => parse_snap(text),
        DatasetFormat::Dimacs => parse_dimacs(text),
    }
}

fn parse_edge_list(text: &str) -> Result<ParsedDataset, DatasetError> {
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut max_id = 0usize;
    for (i, raw) in text.lines().enumerate() {
        let line = clean(raw);
        if is_comment(line.trim_start(), &['#', '%']) {
            continue;
        }
        let lineno = i + 1;
        let mut toks = line.split_whitespace();
        let (u, v) = match (toks.next(), toks.next()) {
            (Some(a), Some(b)) => (parse_id(a, lineno)?, parse_id(b, lineno)?),
            _ => {
                return Err(DatasetError::Parse {
                    line: lineno,
                    msg: format!("expected `u v`, got {line:?}"),
                })
            }
        };
        if u == v {
            return Err(DatasetError::SelfLoop {
                line: lineno,
                id: u,
            });
        }
        max_id = max_id.max(u).max(v);
        edges.push((u as u32, v as u32));
    }
    if edges.is_empty() {
        return Err(DatasetError::Empty {
            what: "edge list".into(),
        });
    }
    Ok(normalize(max_id + 1, edges))
}

fn parse_snap(text: &str) -> Result<ParsedDataset, DatasetError> {
    let mut raw_edges: Vec<(u32, u32)> = Vec::new();
    let mut ids: Vec<u32> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = clean(raw);
        if is_comment(line.trim_start(), &['#', '%']) {
            continue;
        }
        let lineno = i + 1;
        let mut toks = line.split_whitespace();
        let (u, v) = match (toks.next(), toks.next()) {
            (Some(a), Some(b)) => (parse_id(a, lineno)?, parse_id(b, lineno)?),
            _ => {
                return Err(DatasetError::Parse {
                    line: lineno,
                    msg: format!("expected `u v`, got {line:?}"),
                })
            }
        };
        if u == v {
            // SNAP exports routinely carry self-loops; normalization
            // drops them (the radio model has none).
            continue;
        }
        ids.push(u as u32);
        ids.push(v as u32);
        raw_edges.push((u as u32, v as u32));
    }
    if raw_edges.is_empty() {
        return Err(DatasetError::Empty {
            what: "SNAP edge list".into(),
        });
    }
    // Dense remap in ascending id order: sparse SNAP ids (crawled user
    // ids, say) become 0..n without reordering the vertex universe.
    ids.sort_unstable();
    ids.dedup();
    let rank: HashMap<u32, u32> = ids
        .iter()
        .enumerate()
        .map(|(i, &id)| (id, i as u32))
        .collect();
    let edges: Vec<(u32, u32)> = raw_edges
        .into_iter()
        .map(|(u, v)| (rank[&u], rank[&v]))
        .collect();
    Ok(normalize(ids.len(), edges))
}

fn parse_dimacs(text: &str) -> Result<ParsedDataset, DatasetError> {
    let mut n: Option<usize> = None;
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = clean(raw).trim_start();
        let lineno = i + 1;
        if is_comment(line, &['c']) {
            continue;
        }
        let mut toks = line.split_whitespace();
        match toks.next() {
            Some("p") => {
                // `p <kind> <n> <m>` — kind ("edge", "sp", …) is free text.
                let _kind = toks.next();
                let declared = toks.next().ok_or_else(|| DatasetError::Parse {
                    line: lineno,
                    msg: "p-line missing the vertex count".into(),
                })?;
                n = Some(parse_id(declared, lineno)?);
            }
            Some("e") | Some("a") => {
                let n = n.ok_or_else(|| DatasetError::Parse {
                    line: lineno,
                    msg: "edge before the `p` header line".into(),
                })?;
                let (u, v) = match (toks.next(), toks.next()) {
                    (Some(a), Some(b)) => (parse_id(a, lineno)?, parse_id(b, lineno)?),
                    _ => {
                        return Err(DatasetError::Parse {
                            line: lineno,
                            msg: format!("expected `e u v`, got {line:?}"),
                        })
                    }
                };
                // DIMACS is 1-indexed: 0 and anything past n are malformed.
                for id in [u, v] {
                    if id == 0 || id > n {
                        return Err(DatasetError::IdOutOfRange {
                            line: lineno,
                            id,
                            n,
                        });
                    }
                }
                if u == v {
                    return Err(DatasetError::SelfLoop {
                        line: lineno,
                        id: u,
                    });
                }
                edges.push((u as u32 - 1, v as u32 - 1));
            }
            Some(other) => {
                return Err(DatasetError::Parse {
                    line: lineno,
                    msg: format!("unknown DIMACS line kind {other:?}"),
                })
            }
            None => continue,
        }
    }
    let n = n.ok_or_else(|| DatasetError::Empty {
        what: "DIMACS file (no `p` header)".into(),
    })?;
    if edges.is_empty() {
        return Err(DatasetError::Empty {
            what: "DIMACS edge set".into(),
        });
    }
    Ok(normalize(n, edges))
}

/// Parses a coordinate file: DIMACS-style `v <id> <x> <y>` lines
/// (1-indexed, any order) or plain `x y` lines (sequential), with
/// `#`/`%`/`c` comments and CRLF both tolerated.
///
/// # Errors
///
/// Typed [`DatasetError`]s for unparsable lines, duplicate or out-of-order
/// ids, and empty files.
pub fn parse_coords_str(text: &str) -> Result<Vec<(f64, f64)>, DatasetError> {
    let mut plain: Vec<(f64, f64)> = Vec::new();
    let mut tagged: Vec<(usize, (f64, f64))> = Vec::new();
    let parse_f = |tok: &str, line: usize| -> Result<f64, DatasetError> {
        tok.parse::<f64>().map_err(|_| DatasetError::Parse {
            line,
            msg: format!("expected a coordinate, got {tok:?}"),
        })
    };
    for (i, raw) in text.lines().enumerate() {
        let line = clean(raw).trim_start();
        let lineno = i + 1;
        if is_comment(line, &['#', '%']) || line.starts_with("c ") || line == "c" {
            continue;
        }
        let mut toks = line.split_whitespace();
        let first = toks.next().expect("non-blank line has a token");
        if first == "v" {
            let id = parse_id(
                toks.next().ok_or_else(|| DatasetError::Parse {
                    line: lineno,
                    msg: "v-line missing the vertex id".into(),
                })?,
                lineno,
            )?;
            if id == 0 {
                return Err(DatasetError::IdOutOfRange {
                    line: lineno,
                    id,
                    n: 0,
                });
            }
            let (x, y) = match (toks.next(), toks.next()) {
                (Some(a), Some(b)) => (parse_f(a, lineno)?, parse_f(b, lineno)?),
                _ => {
                    return Err(DatasetError::Parse {
                        line: lineno,
                        msg: format!("expected `v id x y`, got {line:?}"),
                    })
                }
            };
            tagged.push((id - 1, (x, y)));
        } else {
            let (x, y) = match (Some(first), toks.next()) {
                (Some(a), Some(b)) => (parse_f(a, lineno)?, parse_f(b, lineno)?),
                _ => {
                    return Err(DatasetError::Parse {
                        line: lineno,
                        msg: format!("expected `x y`, got {line:?}"),
                    })
                }
            };
            plain.push((x, y));
        }
    }
    if !tagged.is_empty() {
        if !plain.is_empty() {
            return Err(DatasetError::Parse {
                line: 0,
                msg: "mixed `v id x y` and plain `x y` lines".into(),
            });
        }
        tagged.sort_by_key(|&(id, _)| id);
        for (i, &(id, _)) in tagged.iter().enumerate() {
            if id != i {
                return Err(DatasetError::Parse {
                    line: 0,
                    msg: format!("coordinate ids are not dense at index {i} (saw id {id})"),
                });
            }
        }
        return Ok(tagged.into_iter().map(|(_, p)| p).collect());
    }
    if plain.is_empty() {
        return Err(DatasetError::Empty {
            what: "coordinate file".into(),
        });
    }
    Ok(plain)
}

/// Guesses the format of `path` from its extension, sniffing the first
/// content line when the extension is unknown.
pub fn detect_format(path: &Path, text: &str) -> DatasetFormat {
    match path
        .extension()
        .and_then(|e| e.to_str())
        .map(str::to_ascii_lowercase)
        .as_deref()
    {
        Some("gr" | "dimacs" | "col" | "graph") => DatasetFormat::Dimacs,
        Some("txt" | "snap") => DatasetFormat::Snap,
        Some("edges" | "el" | "edgelist") => DatasetFormat::EdgeList,
        _ => {
            for raw in text.lines() {
                let line = clean(raw).trim_start();
                if line.is_empty() {
                    continue;
                }
                if line.starts_with("c ") || line.starts_with("p ") || line == "c" {
                    return DatasetFormat::Dimacs;
                }
                if line.starts_with('#') {
                    return DatasetFormat::Snap;
                }
                break;
            }
            DatasetFormat::EdgeList
        }
    }
}

// ---------------------------------------------------------------------------
// Content digests (FNV-1a 64)
// ---------------------------------------------------------------------------

/// FNV-1a 64 over `bytes` — stable across platforms and runs; the cache
/// and staleness keys need reproducibility, not cryptography.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a folded over 8-byte little-endian words (remainder bytes
/// zero-padded), with the length mixed in so padding cannot alias. ~8×
/// fewer multiply rounds than byte-wise FNV — the `.csrbin` checksum
/// runs over megabytes on every warm load, and this keeps it off the
/// critical path. Only used inside the binary cache format (the *source*
/// digest stays byte-wise [`fnv1a64`], matching the bench layer's).
fn fnv1a64_words(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut fold = |w: u64| {
        h ^= w;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    let chunks = bytes.chunks_exact(8);
    let rest = chunks.remainder();
    for c in chunks {
        fold(u64::from_le_bytes(c.try_into().expect("8 bytes")));
    }
    if !rest.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rest.len()].copy_from_slice(rest);
        fold(u64::from_le_bytes(tail));
    }
    fold(bytes.len() as u64);
    h
}

/// The content digest of one file, as the 16-hex-digit string the bench
/// layer stores next to its per-crate source digests.
///
/// # Errors
///
/// [`DatasetError::Io`] if the file cannot be read.
pub fn file_digest(path: &Path) -> Result<String, DatasetError> {
    let bytes = std::fs::read(path).map_err(|e| io_err(path, e))?;
    Ok(format!("{:016x}", fnv1a64(&bytes)))
}

// ---------------------------------------------------------------------------
// Directory resolution
// ---------------------------------------------------------------------------

/// The workspace root: `$EBC_SRC_ROOT` if set, else the workspace this
/// crate was built from.
fn workspace_root() -> PathBuf {
    match std::env::var_os("EBC_SRC_ROOT") {
        Some(root) => PathBuf::from(root),
        // crates/graphs → crates → workspace root.
        None => Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root")
            .to_path_buf(),
    }
}

/// Where dataset files are looked up: `$EBC_DATASET_DIR` if set (the
/// bench CLI's `--dataset-dir` sets it), else `<workspace>/datasets` —
/// the vendored samples.
pub fn dataset_dir() -> PathBuf {
    match std::env::var_os("EBC_DATASET_DIR") {
        Some(dir) => PathBuf::from(dir),
        None => workspace_root().join("datasets"),
    }
}

/// Where binary CSR cache entries live: `$EBC_DATASET_CACHE_DIR` if set,
/// else `<workspace>/.ebc-cache/datasets` (sharing the bench cell cache's
/// root, already gitignored).
pub fn dataset_cache_dir() -> PathBuf {
    match std::env::var_os("EBC_DATASET_CACHE_DIR") {
        Some(dir) => PathBuf::from(dir),
        None => workspace_root().join(".ebc-cache").join("datasets"),
    }
}

/// The full path of one vendored (or `--dataset-dir`-relocated) file.
pub fn sample_path(file: &str) -> PathBuf {
    dataset_dir().join(file)
}

// ---------------------------------------------------------------------------
// Binary CSR cache
// ---------------------------------------------------------------------------

/// Magic + version prefix of `.csrbin` entries.
const CSR_MAGIC: &[u8; 8] = b"EBCCSR1\n";

/// A dataset graph plus where it came from.
#[derive(Debug)]
pub struct LoadedDataset {
    /// The CSR graph.
    pub graph: Graph,
    /// Whether the binary cache served it (false = cold text parse).
    pub from_cache: bool,
}

/// Source-file identity stored in (and checked against) a cache entry.
struct SourceStamp {
    digest: u64,
    len: u64,
    mtime_s: u64,
    mtime_ns: u32,
}

impl SourceStamp {
    fn stat(path: &Path) -> Result<(std::fs::Metadata, u64, u32), DatasetError> {
        let meta = std::fs::metadata(path).map_err(|e| io_err(path, e))?;
        let (s, ns) = meta
            .modified()
            .ok()
            .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
            .map(|d| (d.as_secs(), d.subsec_nanos()))
            .unwrap_or((0, 0));
        Ok((meta, s, ns))
    }
}

fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn read_u64(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(buf[at..at + 8].try_into().expect("8 bytes"))
}

/// The cache entry path for `path`: `<stem>-<hash-of-absolute-path>.csrbin`
/// (the path hash keeps same-named files from distinct dirs apart; the
/// stem keeps entries human-recognizable).
fn cache_entry_path(cache_dir: &Path, path: &Path) -> PathBuf {
    let abs = path
        .canonicalize()
        .unwrap_or_else(|_| path.to_path_buf())
        .to_string_lossy()
        .into_owned();
    let stem = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "dataset".into());
    cache_dir.join(format!("{stem}-{:016x}.csrbin", fnv1a64(abs.as_bytes())))
}

/// Serializes `graph` + the source stamp into the `.csrbin` layout:
/// magic, stamp, `n`, adjacency length, offsets, neighbors, and a
/// trailing FNV checksum over everything before it.
fn encode_bin(graph: &Graph, stamp: &SourceStamp) -> Vec<u8> {
    let offsets = graph.offsets();
    let neighbors = graph.neighbor_data();
    let mut buf = Vec::with_capacity(8 + 6 * 8 + 4 * (offsets.len() + neighbors.len()) + 8);
    buf.extend_from_slice(CSR_MAGIC);
    push_u64(&mut buf, stamp.digest);
    push_u64(&mut buf, stamp.len);
    push_u64(&mut buf, stamp.mtime_s);
    push_u64(&mut buf, u64::from(stamp.mtime_ns));
    push_u64(&mut buf, graph.n() as u64);
    push_u64(&mut buf, neighbors.len() as u64);
    for &o in offsets {
        buf.extend_from_slice(&o.to_le_bytes());
    }
    for &v in neighbors {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    let checksum = fnv1a64_words(&buf);
    push_u64(&mut buf, checksum);
    buf
}

/// Decodes a `.csrbin` buffer. Returns the stored stamp and graph, or
/// `None` on any mismatch (bad magic, torn length, checksum, CSR
/// invariants) — every failure mode degrades to a cold parse.
fn decode_bin(buf: &[u8]) -> Option<(SourceStamp, Graph)> {
    let header = 8 + 6 * 8;
    if buf.len() < header + 8 || &buf[..8] != CSR_MAGIC {
        return None;
    }
    let body = &buf[..buf.len() - 8];
    if fnv1a64_words(body) != read_u64(buf, buf.len() - 8) {
        return None;
    }
    let stamp = SourceStamp {
        digest: read_u64(buf, 8),
        len: read_u64(buf, 16),
        mtime_s: read_u64(buf, 24),
        mtime_ns: u32::try_from(read_u64(buf, 32)).ok()?,
    };
    let n = usize::try_from(read_u64(buf, 40)).ok()?;
    let nbr_len = usize::try_from(read_u64(buf, 48)).ok()?;
    let arrays = &body[header..];
    if arrays.len() != 4 * (n + 1 + nbr_len) {
        return None;
    }
    let decode = |bytes: &[u8]| -> Vec<u32> {
        bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect()
    };
    let offsets = decode(&arrays[..4 * (n + 1)]);
    let neighbors = decode(&arrays[4 * (n + 1)..]);
    // The checksum above just proved these arrays are byte-exact copies
    // of a graph that passed full validation when the entry was written,
    // so the trusted constructor (shape checks only) suffices — the full
    // O(n + m) re-check would dominate million-edge warm loads.
    let graph = Graph::from_csr_parts_trusted(n, offsets, neighbors).ok()?;
    Some((stamp, graph))
}

/// Loads a dataset graph through the binary CSR cache at `cache_dir`.
///
/// Warm path: the cache entry's source stamp matches the file (size +
/// mtime, falling back to a content-digest comparison when only the
/// mtime moved) — the CSR arrays load directly, skipping text parsing
/// and [`Graph::from_edges`]. Cold path: the file is parsed
/// ([`detect_format`] picks the parser), and the cache entry is
/// (re)written atomically. Cache I/O failures degrade to cold parses;
/// only *source* errors surface.
///
/// # Errors
///
/// [`DatasetError`] if the source file is unreadable or malformed.
pub fn load_graph_cached(path: &Path, cache_dir: &Path) -> Result<LoadedDataset, DatasetError> {
    let (meta, mtime_s, mtime_ns) = SourceStamp::stat(path)?;
    let entry = cache_entry_path(cache_dir, path);
    let mut src_digest: Option<u64> = None;
    if let Ok(buf) = std::fs::read(&entry) {
        if let Some((stamp, graph)) = decode_bin(&buf) {
            let fast =
                stamp.len == meta.len() && stamp.mtime_s == mtime_s && stamp.mtime_ns == mtime_ns;
            let fresh = fast || {
                let bytes = std::fs::read(path).map_err(|e| io_err(path, e))?;
                let d = fnv1a64(&bytes);
                src_digest = Some(d);
                stamp.len == meta.len() && stamp.digest == d
            };
            if fresh {
                return Ok(LoadedDataset {
                    graph,
                    from_cache: true,
                });
            }
        }
    }
    // Cold: parse the text and refresh the entry.
    let bytes = std::fs::read(path).map_err(|e| io_err(path, e))?;
    let digest = src_digest.unwrap_or_else(|| fnv1a64(&bytes));
    let text = String::from_utf8(bytes).map_err(|e| io_err(path, e))?;
    let parsed = parse_str(&text, detect_format(path, &text))?;
    let graph = parsed.to_graph()?;
    let stamp = SourceStamp {
        digest,
        len: meta.len(),
        mtime_s,
        mtime_ns,
    };
    let encoded = encode_bin(&graph, &stamp);
    // Best-effort write: tmp + rename so concurrent loaders never see a
    // torn entry; a read-only cache dir just means every load is cold.
    if std::fs::create_dir_all(cache_dir).is_ok() {
        let tmp = entry.with_extension(format!("tmp{}", std::process::id()));
        if std::fs::write(&tmp, &encoded).is_ok() {
            let _ = std::fs::rename(&tmp, &entry);
        }
    }
    Ok(LoadedDataset {
        graph,
        from_cache: false,
    })
}

/// [`load_graph_cached`] at the default cache dir ([`dataset_cache_dir`]).
///
/// # Errors
///
/// [`DatasetError`] if the source file is unreadable or malformed.
pub fn load_graph(path: &Path) -> Result<LoadedDataset, DatasetError> {
    load_graph_cached(path, &dataset_cache_dir())
}

/// Loads a coordinate file ([`parse_coords_str`]; no binary cache —
/// coordinate parsing is linear and allocation-light).
///
/// # Errors
///
/// [`DatasetError`] if the file is unreadable or malformed.
pub fn load_coords(path: &Path) -> Result<Vec<(f64, f64)>, DatasetError> {
    let text = std::fs::read_to_string(path).map_err(|e| io_err(path, e))?;
    parse_coords_str(&text)
}

// ---------------------------------------------------------------------------
// Derived radio topologies
// ---------------------------------------------------------------------------

/// Internal: distinct derivation streams for this module's samplers
/// (disjoint from [`crate::random`]'s `0x6772_6170_6873_*` tags).
fn stream_tag(k: u64) -> u64 {
    0x6461_7461_7365_0000 | k
}

/// A unit-disk (transmission-range) graph over real coordinates: an edge
/// wherever two points lie within `radius`, plus a random spanning tree
/// so the result is connected (the same surrogate the synthetic families
/// use). Neighbor search is grid-bucketed — `O(n · deg)`, so
/// million-point sensor fields build at dataset scale.
///
/// # Panics
///
/// Panics if `pts` is empty, `radius` is not positive, or a coordinate
/// is non-finite.
pub fn unit_disk_of_coords(pts: &[(f64, f64)], radius: f64, seed: u64) -> Graph {
    assert!(!pts.is_empty());
    assert!(radius > 0.0, "radius must be positive");
    let n = pts.len();
    let mut edges = random::disk_edges(pts, radius);
    let tree = random::random_tree(n, seed ^ 0xd5_c0de_0000_0002);
    for u in 0..n {
        for v in tree.neighbors(u) {
            if u < v {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(n, &edges).expect("valid coordinate disk graph")
}

/// A `k`-nearest-neighbor sensor field over real coordinates: each point
/// links to its `k` nearest peers (symmetrized; ties broken by distance
/// then id, so the graph is deterministic), plus a random spanning tree
/// for connectivity. Grid-bucketed ring search keeps construction near
/// `O(n · k)` on uniformish fields.
///
/// # Panics
///
/// Panics if `pts.len() < 2`, `k == 0`, or a coordinate is non-finite.
pub fn k_nearest(pts: &[(f64, f64)], k: usize, seed: u64) -> Graph {
    let n = pts.len();
    assert!(n >= 2, "need at least two points");
    assert!(k >= 1, "need k >= 1");
    for &(x, y) in pts {
        assert!(x.is_finite() && y.is_finite(), "non-finite coordinate");
    }
    // Cell size ≈ the spacing at which an average cell holds one point;
    // ring expansion then terminates after O(√k) rings on uniform fields.
    let (min_x, max_x) = min_max(pts.iter().map(|p| p.0));
    let (min_y, max_y) = min_max(pts.iter().map(|p| p.1));
    let span = (max_x - min_x).max(max_y - min_y);
    let cells_per_axis = (n as f64).sqrt().ceil().max(1.0);
    let cell = if span > 0.0 {
        span / cells_per_axis
    } else {
        1.0
    };
    let mut buckets: HashMap<(i64, i64), Vec<u32>> = HashMap::new();
    let key = |x: f64, y: f64| ((x / cell).floor() as i64, (y / cell).floor() as i64);
    for (i, &(x, y)) in pts.iter().enumerate() {
        buckets.entry(key(x, y)).or_default().push(i as u32);
    }
    let max_ring = cells_per_axis as i64 + 1;
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(n * k);
    let mut best: Vec<(f64, u32)> = Vec::new();
    for u in 0..n {
        let (ux, uy) = pts[u];
        let (cx, cy) = key(ux, uy);
        best.clear();
        for d in 0..=max_ring {
            for (bx, by) in ring_cells(cx, cy, d) {
                let Some(cands) = buckets.get(&(bx, by)) else {
                    continue;
                };
                for &v in cands {
                    if v as usize == u {
                        continue;
                    }
                    let (vx, vy) = pts[v as usize];
                    let d2 = (ux - vx) * (ux - vx) + (uy - vy) * (uy - vy);
                    best.push((d2, v));
                }
            }
            if best.len() >= k {
                best.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite distances"));
                best.truncate(k.max(best.len().min(k)));
                // Points beyond ring `d` are at least `d * cell` away;
                // once the k-th best is closer, no later ring can displace it.
                let bound = d as f64 * cell;
                if best[k - 1].0 <= bound * bound {
                    break;
                }
            }
        }
        best.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite distances"));
        for &(_, v) in best.iter().take(k) {
            let v = v as usize;
            edges.push((u.min(v), u.max(v)));
        }
    }
    let tree = random::random_tree(n, seed ^ 0xd5_c0de_0000_0003);
    for u in 0..n {
        for v in tree.neighbors(u) {
            if u < v {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(n, &edges).expect("valid k-nearest graph")
}

fn min_max(vals: impl Iterator<Item = f64>) -> (f64, f64) {
    vals.fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
        (lo.min(v), hi.max(v))
    })
}

/// The cells at Chebyshev distance exactly `d` from `(cx, cy)`.
fn ring_cells(cx: i64, cy: i64, d: i64) -> Vec<(i64, i64)> {
    if d == 0 {
        return vec![(cx, cy)];
    }
    let mut out = Vec::with_capacity(8 * d as usize);
    for x in (cx - d)..=(cx + d) {
        out.push((x, cy - d));
        out.push((x, cy + d));
    }
    for y in (cy - d + 1)..(cy + d) {
        out.push((cx - d, y));
        out.push((cx + d, y));
    }
    out
}

/// A Chung-Lu random graph matched to an observed degree sequence: edge
/// `{u, v}` appears with probability `min(1, w_u w_v / Σw)` where `w` is
/// the (floor-1) degree sequence, so the expected degrees reproduce the
/// observed distribution's shape — power-law in, power-law out. Uses the
/// Miller–Hagberg sorted skip-sampling construction (`O(n + m)`, not
/// `O(n²)`), plus the usual random-spanning-tree connectivity surrogate.
///
/// # Panics
///
/// Panics if `degrees` is empty.
pub fn chung_lu(degrees: &[usize], seed: u64) -> Graph {
    let n = degrees.len();
    assert!(n >= 1, "need at least one vertex");
    // Sort by weight descending (ties by id) so the per-row acceptance
    // probability is non-increasing — the precondition for skip sampling.
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by_key(|&v| (std::cmp::Reverse(degrees[v as usize]), v));
    let w: Vec<f64> = order
        .iter()
        .map(|&v| degrees[v as usize].max(1) as f64)
        .collect();
    let total: f64 = w.iter().sum();
    let mut rng = node_rng(seed, 0, stream_tag(0));
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for i in 0..n.saturating_sub(1) {
        let mut j = i + 1;
        let mut p = (w[i] * w[j] / total).min(1.0);
        while j < n && p > 0.0 {
            if p < 1.0 {
                // Geometric skip: the number of consecutive rejections at
                // probability p, drawn in O(1).
                let r: f64 = rng.gen();
                let skip = ((1.0 - r).ln() / (1.0 - p).ln()).floor();
                if !skip.is_finite() || skip >= (n - j) as f64 {
                    break;
                }
                j += skip as usize;
            }
            let q = (w[i] * w[j] / total).min(1.0);
            if rng.gen::<f64>() < q / p {
                edges.push((order[i] as usize, order[j] as usize));
            }
            p = q;
            j += 1;
        }
    }
    let tree = random::random_tree(n, seed ^ 0xd5_c0de_0000_0004);
    for u in 0..n {
        for v in tree.neighbors(u) {
            if u < v {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(n, &edges).expect("valid Chung-Lu graph")
}

/// Resamples `n` degrees (uniformly, with replacement) from `graph`'s
/// observed degree sequence — the input [`chung_lu`] matches at any
/// target size.
pub fn resample_degrees(graph: &Graph, n: usize, seed: u64) -> Vec<usize> {
    let mut rng = node_rng(seed, 0, stream_tag(1));
    (0..n)
        .map(|_| graph.degree(rng.gen_range(0..graph.n())))
        .collect()
}

/// The induced subgraph on the first `n` vertices of a BFS from `start`,
/// relabeled in discovery order (`start` becomes vertex 0). Connected
/// whenever the component of `start` is — every discovered vertex keeps
/// its discovery edge. This is how dataset-backed families scale a fixed
/// real graph down to the matrix's `n` axis without destroying its local
/// structure.
///
/// # Panics
///
/// Panics if `start >= graph.n()` or `n == 0`.
pub fn bfs_ball(graph: &Graph, start: usize, n: usize) -> Graph {
    assert!(start < graph.n());
    assert!(n >= 1);
    let mut rank = vec![u32::MAX; graph.n()];
    let mut order: Vec<u32> = Vec::with_capacity(n.min(graph.n()));
    rank[start] = 0;
    order.push(start as u32);
    let mut head = 0usize;
    'bfs: while head < order.len() && order.len() < n {
        let u = order[head] as usize;
        head += 1;
        for v in graph.neighbors(u) {
            if rank[v] == u32::MAX {
                rank[v] = order.len() as u32;
                order.push(v as u32);
                if order.len() == n {
                    break 'bfs;
                }
            }
        }
    }
    let ball = order.len();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for (new_u, &u) in order.iter().enumerate() {
        for v in graph.neighbors(u as usize) {
            let new_v = rank[v];
            // Each in-ball edge appears twice in the scan; keep the
            // orientation where the endpoint ranks ascend.
            if new_v != u32::MAX && (new_u as u32) < new_v {
                edges.push((new_u, new_v as usize));
            }
        }
    }
    Graph::from_edges(ball, &edges).expect("valid BFS ball")
}

/// `copies` disjoint copies of `graph` chained by one bridge edge between
/// consecutive copies (copy `c`'s vertex 0 to copy `c+1`'s vertex 0) —
/// how a fixed dataset scales *up* past its own size without losing its
/// local structure, the way adjacent map tiles extend a road network.
/// Connected whenever `graph` is.
///
/// # Panics
///
/// Panics if `copies == 0`.
pub fn tile_graph(graph: &Graph, copies: usize) -> Graph {
    assert!(copies >= 1);
    let n0 = graph.n();
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(copies * graph.m() + copies);
    for c in 0..copies {
        let base = c * n0;
        for u in 0..n0 {
            for v in graph.neighbors(u) {
                if u < v {
                    edges.push((base + u, base + v));
                }
            }
        }
        if c + 1 < copies {
            edges.push((base, base + n0));
        }
    }
    Graph::from_edges(copies * n0, &edges).expect("valid tiled graph")
}

/// `copies` copies of a coordinate field laid out in a row, each shifted
/// one bounding-box-plus-one-cell stride along x — the coordinate-space
/// analogue of [`tile_graph`].
///
/// # Panics
///
/// Panics if `pts` is empty or `copies == 0`.
pub fn tile_coords(pts: &[(f64, f64)], copies: usize) -> Vec<(f64, f64)> {
    assert!(!pts.is_empty() && copies >= 1);
    let (min_x, max_x) = min_max(pts.iter().map(|p| p.0));
    // One average-spacing pad keeps copies adjacent but not overlapping.
    let stride = (max_x - min_x).max(1e-9) * (1.0 + 1.0 / (pts.len() as f64).sqrt());
    let mut out = Vec::with_capacity(copies * pts.len());
    for c in 0..copies {
        let dx = c as f64 * stride;
        out.extend(pts.iter().map(|&(x, y)| (x + dx, y)));
    }
    out
}

/// A seeded uniform subsample of `n` points (partial Fisher–Yates; the
/// whole set when `n >= pts.len()`), in ascending original order so the
/// draw is order-stable.
pub fn subsample_coords(pts: &[(f64, f64)], n: usize, seed: u64) -> Vec<(f64, f64)> {
    if n >= pts.len() {
        return pts.to_vec();
    }
    let mut rng = node_rng(seed, 0, stream_tag(2));
    let mut idx: Vec<u32> = (0..pts.len() as u32).collect();
    for i in 0..n {
        let j = rng.gen_range(i..pts.len());
        idx.swap(i, j);
    }
    let mut picked = idx[..n].to_vec();
    picked.sort_unstable();
    picked.into_iter().map(|i| pts[i as usize]).collect()
}

// ---------------------------------------------------------------------------
// The vendored-sample family backends
// ---------------------------------------------------------------------------

/// Loads a vendored sample graph (binary-cached), panicking with a
/// pointed message when the dataset dir is missing — the families API is
/// infallible by contract, and the vendored files ship with the repo.
fn sample_graph(file: &str) -> Graph {
    let path = sample_path(file);
    load_graph(&path)
        .unwrap_or_else(|e| {
            panic!(
                "cannot load vendored dataset {} (set EBC_DATASET_DIR or run \
                 from the repo): {e}",
                path.display()
            )
        })
        .graph
}

/// The vertex of maximum degree (lowest id on ties) — the natural hub to
/// root dataset subsampling at.
fn hub(graph: &Graph) -> usize {
    (0..graph.n())
        .max_by_key(|&v| (graph.degree(v), std::cmp::Reverse(v)))
        .expect("nonempty graph")
}

/// An n-vertex BFS ball of one sample graph, rooted at its hub; the
/// sample is tiled up first when `n` exceeds it ([`tile_graph`]).
fn ball_instance(file: &str, n: usize) -> Graph {
    let g = sample_graph(file);
    let g = if n > g.n() {
        tile_graph(&g, n.div_ceil(g.n()))
    } else {
        g
    };
    bfs_ball(&g, hub(&g), n)
}

/// `ds-social`: an n-vertex BFS ball around the social sample's highest-
/// degree hub. Deterministic (the seed is unused — the data is the data).
pub fn social_instance(n: usize) -> Graph {
    ball_instance(SAMPLE_SOCIAL, n)
}

/// `ds-roadnet`: an n-vertex BFS ball of the road/sensor sample, rooted
/// at its hub. Deterministic.
pub fn roadnet_instance(n: usize) -> Graph {
    ball_instance(SAMPLE_ROADNET, n)
}

/// `ds-unit-disk`: a unit-disk graph over `n` points subsampled from the
/// road sample's coordinates, radius tuned for expected degree ≈ 8 from
/// the subsample's bounding box.
pub fn unit_disk_instance(n: usize, seed: u64) -> Graph {
    let pts = sample_coords(n, seed);
    let (min_x, max_x) = min_max(pts.iter().map(|p| p.0));
    let (min_y, max_y) = min_max(pts.iter().map(|p| p.1));
    let area = (max_x - min_x) * (max_y - min_y);
    let radius = if area > 0.0 {
        (8.0 * area / (std::f64::consts::PI * pts.len() as f64)).sqrt()
    } else {
        1.0
    };
    unit_disk_of_coords(&pts, radius, seed)
}

/// `ds-knn`: a 6-nearest-neighbor sensor field over `n` points
/// subsampled from the road sample's coordinates.
pub fn knn_instance(n: usize, seed: u64) -> Graph {
    k_nearest(&sample_coords(n, seed), 6, seed)
}

fn sample_coords(n: usize, seed: u64) -> Vec<(f64, f64)> {
    let path = sample_path(SAMPLE_ROADNET_COORDS);
    let mut pts = load_coords(&path).unwrap_or_else(|e| {
        panic!(
            "cannot load vendored dataset {} (set EBC_DATASET_DIR or run \
             from the repo): {e}",
            path.display()
        )
    });
    if n > pts.len() {
        pts = tile_coords(&pts, n.div_ceil(pts.len()));
    }
    subsample_coords(&pts, n, seed)
}

/// `ds-chung-lu`: a Chung-Lu graph whose weights are `n` degrees
/// resampled from the social sample's observed degree sequence — the
/// power-law "millions-of-users" surrogate, scalable to any `n`.
pub fn chung_lu_instance(n: usize, seed: u64) -> Graph {
    let g = sample_graph(SAMPLE_SOCIAL);
    chung_lu(&resample_degrees(&g, n, seed), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EDGE_LIST: &str = "# tiny\n0 1\n1 2\n2 3\n3 0\n";
    const SNAP: &str = "# Directed graph: web-tiny.txt\n# Nodes: 4 Edges: 5\n10\t20\n20\t30\n30\t40\n40\t10\n10\t10\n20\t10\n";
    const DIMACS: &str = "c a square\np edge 4 4\ne 1 2\ne 2 3\ne 3 4\ne 4 1\n";

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ebc_datasets_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn the_three_formats_agree_on_the_square() {
        let a = parse_str(EDGE_LIST, DatasetFormat::EdgeList).unwrap();
        let b = parse_str(SNAP, DatasetFormat::Snap).unwrap();
        let c = parse_str(DIMACS, DatasetFormat::Dimacs).unwrap();
        assert_eq!(a, b, "SNAP remap + normalization must match");
        assert_eq!(a, c, "DIMACS 1-indexing must shift to 0-indexed");
        assert_eq!(a.n, 4);
        assert_eq!(a.edges, vec![(0, 1), (0, 3), (1, 2), (2, 3)]);
        let g = a.to_graph().unwrap();
        assert_eq!((g.n(), g.m()), (4, 4));
    }

    #[test]
    fn crlf_and_unicode_comments_parse() {
        let text = "# ünïcødé ✓ comment — naïve café\r\n0 1\r\n1 2\r\n";
        let p = parse_str(text, DatasetFormat::EdgeList).unwrap();
        assert_eq!(p.n, 3);
        assert_eq!(p.edges.len(), 2);
    }

    #[test]
    fn snap_normalizes_self_loops_duplicates_and_sparse_ids() {
        let p = parse_str(SNAP, DatasetFormat::Snap).unwrap();
        // 10→0, 20→1, 30→2, 40→3; the self-loop 10-10 dropped; the
        // reversed duplicate 20-10 merged into 10-20.
        assert_eq!(p.n, 4);
        assert_eq!(p.edges, vec![(0, 1), (0, 3), (1, 2), (2, 3)]);
    }

    #[test]
    fn strict_formats_reject_malformed_input_with_typed_errors() {
        // Self-loops.
        assert!(matches!(
            parse_str("0 0\n", DatasetFormat::EdgeList),
            Err(DatasetError::SelfLoop { line: 1, id: 0 })
        ));
        assert!(matches!(
            parse_str("p edge 3 1\ne 2 2\n", DatasetFormat::Dimacs),
            Err(DatasetError::SelfLoop { line: 2, id: 2 })
        ));
        // Out-of-range / 0 ids in 1-indexed DIMACS.
        assert!(matches!(
            parse_str("p edge 3 1\ne 1 4\n", DatasetFormat::Dimacs),
            Err(DatasetError::IdOutOfRange {
                line: 2,
                id: 4,
                n: 3
            })
        ));
        assert!(matches!(
            parse_str("p edge 3 1\ne 0 1\n", DatasetFormat::Dimacs),
            Err(DatasetError::IdOutOfRange { id: 0, .. })
        ));
        // Empty files.
        assert!(matches!(
            parse_str("# nothing here\n", DatasetFormat::EdgeList),
            Err(DatasetError::Empty { .. })
        ));
        assert!(matches!(
            parse_str("", DatasetFormat::Snap),
            Err(DatasetError::Empty { .. })
        ));
        assert!(matches!(
            parse_str("c no p line\n", DatasetFormat::Dimacs),
            Err(DatasetError::Empty { .. })
        ));
        // Garbage tokens and truncated lines.
        assert!(matches!(
            parse_str("0 x\n", DatasetFormat::EdgeList),
            Err(DatasetError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            parse_str("p edge 3 1\ne 1\n", DatasetFormat::Dimacs),
            Err(DatasetError::Parse { line: 2, .. })
        ));
        // An edge before the DIMACS header.
        assert!(matches!(
            parse_str("e 1 2\n", DatasetFormat::Dimacs),
            Err(DatasetError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn coords_parse_both_styles() {
        let tagged = "c DIMACS style\nv 2 1.5 2.5\nv 1 0.0 0.5\nv 3 3.0 0.25\n";
        let pts = parse_coords_str(tagged).unwrap();
        assert_eq!(pts, vec![(0.0, 0.5), (1.5, 2.5), (3.0, 0.25)]);
        let plain = "# plain\n0.0 0.5\r\n1.5 2.5\r\n";
        assert_eq!(parse_coords_str(plain).unwrap().len(), 2);
        assert!(matches!(
            parse_coords_str("# none\n"),
            Err(DatasetError::Empty { .. })
        ));
        assert!(matches!(
            parse_coords_str("v 1 0 0\nv 3 1 1\n"),
            Err(DatasetError::Parse { .. })
        ));
        assert!(matches!(
            parse_coords_str("0 bad\n"),
            Err(DatasetError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn format_detection_by_extension_and_sniffing() {
        let d = Path::new("x.gr");
        assert_eq!(detect_format(d, ""), DatasetFormat::Dimacs);
        assert_eq!(detect_format(Path::new("x.txt"), ""), DatasetFormat::Snap);
        assert_eq!(
            detect_format(Path::new("x.edges"), ""),
            DatasetFormat::EdgeList
        );
        // Unknown extension: sniff.
        let u = Path::new("x.data");
        assert_eq!(
            detect_format(u, "c hi\np edge 1 0\n"),
            DatasetFormat::Dimacs
        );
        assert_eq!(detect_format(u, "# snap\n1 2\n"), DatasetFormat::Snap);
        assert_eq!(detect_format(u, "1 2\n"), DatasetFormat::EdgeList);
    }

    #[test]
    fn binary_cache_round_trips_and_detects_edits() {
        let dir = tmp_dir("cache");
        let src = dir.join("square.edges");
        let cache = dir.join("csr");
        std::fs::write(&src, EDGE_LIST).unwrap();

        let cold = load_graph_cached(&src, &cache).unwrap();
        assert!(!cold.from_cache, "first load must be a cold parse");
        let warm = load_graph_cached(&src, &cache).unwrap();
        assert!(warm.from_cache, "second load must hit the binary cache");
        assert_eq!(cold.graph, warm.graph, "cache round trip must be exact");

        // Editing the dataset invalidates: the next load re-parses and
        // sees the new edge.
        std::fs::write(&src, format!("{EDGE_LIST}1 3\n")).unwrap();
        let edited = load_graph_cached(&src, &cache).unwrap();
        assert!(!edited.from_cache, "edited dataset must reload cold");
        assert_eq!(edited.graph.m(), cold.graph.m() + 1);
        // …and the refreshed entry is warm again.
        assert!(load_graph_cached(&src, &cache).unwrap().from_cache);
    }

    #[test]
    fn corrupt_cache_entries_degrade_to_cold_parses() {
        let dir = tmp_dir("corrupt");
        let src = dir.join("square.edges");
        let cache = dir.join("csr");
        std::fs::write(&src, EDGE_LIST).unwrap();
        let cold = load_graph_cached(&src, &cache).unwrap();

        // Flip one byte in the stored arrays: the checksum must catch it.
        let entry = std::fs::read_dir(&cache)
            .unwrap()
            .next()
            .unwrap()
            .unwrap()
            .path();
        let mut bytes = std::fs::read(&entry).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&entry, &bytes).unwrap();
        let reloaded = load_graph_cached(&src, &cache).unwrap();
        assert!(!reloaded.from_cache, "corrupt entry must not serve");
        assert_eq!(reloaded.graph, cold.graph);
        // Truncation is also caught.
        let bytes = std::fs::read(&entry).unwrap();
        std::fs::write(&entry, &bytes[..bytes.len() / 3]).unwrap();
        assert!(!load_graph_cached(&src, &cache).unwrap().from_cache);
    }

    #[test]
    fn unit_disk_of_coords_is_geometric_and_connected() {
        // A 5x5 grid with spacing 1: radius 1.1 links the lattice.
        let pts: Vec<(f64, f64)> = (0..25).map(|i| ((i % 5) as f64, (i / 5) as f64)).collect();
        let g = unit_disk_of_coords(&pts, 1.1, 7);
        assert_eq!(g.n(), 25);
        assert!(g.is_connected());
        // Radius 1.1 reaches axis neighbors (distance 1) but not
        // diagonals (√2): the disk edges are exactly the 2·5·4 = 40
        // lattice edges, plus at most the 24 spanning-tree edges.
        assert!((40..=64).contains(&g.m()), "m = {}", g.m());
    }

    #[test]
    fn k_nearest_links_each_point_to_k_peers() {
        let pts: Vec<(f64, f64)> = (0..36).map(|i| ((i % 6) as f64, (i / 6) as f64)).collect();
        let g = k_nearest(&pts, 3, 11);
        assert_eq!(g.n(), 36);
        assert!(g.is_connected());
        for v in 0..g.n() {
            assert!(g.degree(v) >= 3 - 1, "degree {} at {v}", g.degree(v));
        }
        // Interior lattice point 14 = (2, 2): its 3 nearest are axis
        // neighbors at distance 1 — all of which must be edges (plus
        // whatever chose it back or the tree added).
        let nb: Vec<usize> = g.neighbors(14).collect();
        let axis = [8, 13, 15, 20];
        let hits = axis.iter().filter(|&&a| nb.contains(&a)).count();
        assert!(hits >= 3, "lattice neighbors missing: {nb:?}");
    }

    #[test]
    fn chung_lu_tracks_the_target_degrees() {
        // Heavy-tailed weights: a hub of weight ~n/2 plus unit weights.
        let mut degrees = vec![2usize; 200];
        degrees[0] = 100;
        let g = chung_lu(&degrees, 5);
        assert_eq!(g.n(), 200);
        assert!(g.is_connected());
        // The hub must dominate: several times the median degree.
        let hub_deg = g.degree(0);
        let mut all: Vec<usize> = (0..200).map(|v| g.degree(v)).collect();
        all.sort_unstable();
        assert!(
            hub_deg >= 4 * all[100].max(1),
            "hub {hub_deg} vs median {}",
            all[100]
        );
        // Reproducible; different seeds differ.
        assert_eq!(chung_lu(&degrees, 5), g);
        assert_ne!(chung_lu(&degrees, 6), g);
    }

    #[test]
    fn bfs_ball_takes_exactly_n_connected_vertices() {
        let g = crate::deterministic::grid(10, 10);
        for n in [1, 8, 17, 64, 100, 500] {
            let ball = bfs_ball(&g, 0, n);
            assert_eq!(ball.n(), n.min(100));
            assert!(ball.is_connected(), "ball of {n} disconnected");
        }
        // Discovery-order relabeling: the start vertex becomes 0.
        let ball = bfs_ball(&g, 55, 30);
        assert_eq!(ball.n(), 30);
        assert!(ball.is_connected());
    }

    #[test]
    fn tiling_scales_past_the_sample_size() {
        let g = crate::deterministic::cycle(10);
        let tiled = tile_graph(&g, 3);
        assert_eq!(tiled.n(), 30);
        assert_eq!(tiled.m(), 3 * 10 + 2, "3 copies + 2 bridges");
        assert!(tiled.is_connected());
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 0.0)).collect();
        let tp = tile_coords(&pts, 4);
        assert_eq!(tp.len(), 40);
        // Copies must not overlap.
        let mut xs: Vec<f64> = tp.iter().map(|p| p.0).collect();
        xs.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(xs.windows(2).all(|w| w[1] > w[0]), "coordinate collision");
        // A ball bigger than the sample still has exactly n vertices.
        let big = ball_instance(SAMPLE_ROADNET, 1500);
        assert_eq!(big.n(), 1500);
        assert!(big.is_connected());
    }

    #[test]
    fn subsample_is_seeded_and_order_stable() {
        let pts: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, 0.0)).collect();
        let a = subsample_coords(&pts, 10, 3);
        assert_eq!(a.len(), 10);
        assert_eq!(a, subsample_coords(&pts, 10, 3));
        assert_ne!(a, subsample_coords(&pts, 10, 4));
        // Ascending original order.
        assert!(a.windows(2).all(|w| w[0].0 < w[1].0));
        // Oversampling returns everything.
        assert_eq!(subsample_coords(&pts, 200, 3).len(), 100);
    }

    #[test]
    fn vendored_samples_load_and_are_connected() {
        for file in [SAMPLE_SOCIAL, SAMPLE_ROADNET] {
            let g = sample_graph(file);
            assert!(g.n() >= 512, "{file}: n = {}", g.n());
            assert!(g.is_connected(), "{file} disconnected");
        }
        let pts = load_coords(&sample_path(SAMPLE_ROADNET_COORDS)).unwrap();
        assert!(pts.len() >= 512);
        // The social sample is the power-law one: its hub dwarfs its
        // median degree.
        let g = sample_graph(SAMPLE_SOCIAL);
        let mut degs: Vec<usize> = (0..g.n()).map(|v| g.degree(v)).collect();
        degs.sort_unstable();
        assert!(
            g.degree(hub(&g)) >= 8 * degs[g.n() / 2],
            "hub {} vs median {}",
            g.degree(hub(&g)),
            degs[g.n() / 2]
        );
    }

    #[test]
    fn family_files_cover_every_dataset_family_and_only_them() {
        for fam in [
            "ds-social",
            "ds-roadnet",
            "ds-unit-disk",
            "ds-knn",
            "ds-chung-lu",
        ] {
            let files = family_files(fam);
            assert!(!files.is_empty(), "{fam} has no backing files");
            for f in files {
                assert!(SAMPLE_FILES.contains(f), "{fam} names unvendored {f}");
            }
        }
        assert!(family_files("cycle").is_empty());
        assert!(family_files("nope").is_empty());
    }

    #[test]
    fn file_digest_moves_with_content() {
        let dir = tmp_dir("digest");
        let p = dir.join("d.txt");
        std::fs::write(&p, "alpha").unwrap();
        let a = file_digest(&p).unwrap();
        assert_eq!(a.len(), 16);
        assert_eq!(a, file_digest(&p).unwrap());
        std::fs::write(&p, "beta").unwrap();
        assert_ne!(a, file_digest(&p).unwrap());
        assert!(matches!(
            file_digest(&dir.join("missing")),
            Err(DatasetError::Io { .. })
        ));
    }
}
