//! Deterministic topology families.

use ebc_radio::Graph;

/// The path `v_0 — v_1 — … — v_{n-1}` (paper §2, §8). Diameter `n-1`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn path(n: usize) -> Graph {
    let edges: Vec<_> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
    Graph::from_edges(n, &edges).expect("valid path")
}

/// The cycle on `n ≥ 3` vertices. Diameter `⌊n/2⌋`.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs n >= 3");
    let mut edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
    edges.push((n - 1, 0));
    Graph::from_edges(n, &edges).expect("valid cycle")
}

/// The complete graph (single-hop network). Diameter 1 for `n ≥ 2`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn complete(n: usize) -> Graph {
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n {
        for v in u + 1..n {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, &edges).expect("valid clique")
}

/// A star: hub `0` joined to `leaves` leaves. `Δ = leaves`.
///
/// # Panics
///
/// Panics if `leaves == 0`.
pub fn star(leaves: usize) -> Graph {
    assert!(leaves >= 1, "star needs at least one leaf");
    let edges: Vec<_> = (1..=leaves).map(|v| (0, v)).collect();
    Graph::from_edges(leaves + 1, &edges).expect("valid star")
}

/// The paper's Theorem 2 gadget `G_k ≅ K_{2,k}`: source `s = 0` and sink
/// `t = 1`, each adjacent to middle vertices `2..k+2`.
///
/// Broadcast from `s` on this family reduces to single-hop LeaderElection
/// among the middles, which yields the paper's energy lower bounds.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn k2k(k: usize) -> Graph {
    assert!(k >= 1, "K_{{2,k}} needs k >= 1");
    let mut edges = Vec::with_capacity(2 * k);
    for m in 0..k {
        edges.push((0, 2 + m));
        edges.push((1, 2 + m));
    }
    Graph::from_edges(k + 2, &edges).expect("valid K_{2,k}")
}

/// The complete bipartite graph `K_{a,b}`; sides are `0..a` and `a..a+b`.
///
/// # Panics
///
/// Panics if `a == 0` or `b == 0`.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    assert!(a >= 1 && b >= 1);
    let mut edges = Vec::with_capacity(a * b);
    for u in 0..a {
        for v in 0..b {
            edges.push((u, a + v));
        }
    }
    Graph::from_edges(a + b, &edges).expect("valid K_{a,b}")
}

/// A `w × h` grid; vertex `(x, y)` is index `y*w + x`. `Δ ≤ 4`,
/// diameter `w + h - 2`.
///
/// # Panics
///
/// Panics if `w == 0` or `h == 0`.
pub fn grid(w: usize, h: usize) -> Graph {
    assert!(w >= 1 && h >= 1);
    let mut edges = Vec::new();
    for y in 0..h {
        for x in 0..w {
            let v = y * w + x;
            if x + 1 < w {
                edges.push((v, v + 1));
            }
            if y + 1 < h {
                edges.push((v, v + w));
            }
        }
    }
    Graph::from_edges(w * h, &edges).expect("valid grid")
}

/// A ladder (2 × `len` grid): diameter `len`, `Δ = 3`. Useful when the
/// experiments need `D = Θ(n)` with constant degree but more interesting
/// structure than a path.
///
/// # Panics
///
/// Panics if `len == 0`.
pub fn ladder(len: usize) -> Graph {
    grid(len, 2)
}

/// A complete `arity`-ary tree of the given `depth` (root at 0).
/// `n = (arity^{depth+1} - 1) / (arity - 1)` for `arity ≥ 2`.
///
/// # Panics
///
/// Panics if `arity < 2`.
pub fn complete_tree(arity: usize, depth: u32) -> Graph {
    assert!(arity >= 2, "complete_tree needs arity >= 2");
    let mut n = 1usize;
    let mut level = 1usize;
    for _ in 0..depth {
        level *= arity;
        n += level;
    }
    let mut edges = Vec::with_capacity(n - 1);
    for v in 1..n {
        edges.push((v, (v - 1) / arity));
    }
    Graph::from_edges(n, &edges).expect("valid tree")
}

/// The `d`-dimensional hypercube: `n = 2^d`, diameter `d`, `Δ = d`.
///
/// # Panics
///
/// Panics if `d == 0` or `d >= 30`.
pub fn hypercube(d: u32) -> Graph {
    assert!((1..30).contains(&d));
    let n = 1usize << d;
    let mut edges = Vec::with_capacity(n * d as usize / 2);
    for v in 0..n {
        for bit in 0..d {
            let u = v ^ (1 << bit);
            if u > v {
                edges.push((v, u));
            }
        }
    }
    Graph::from_edges(n, &edges).expect("valid hypercube")
}

/// A caterpillar: a spine path of `spine` vertices, each with `legs` leaves.
/// `n = spine * (1 + legs)`; spine vertex `i` is index `i`, its legs follow
/// the spine block.
///
/// # Panics
///
/// Panics if `spine == 0`.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    assert!(spine >= 1);
    let n = spine * (1 + legs);
    let mut edges = Vec::new();
    for i in 0..spine.saturating_sub(1) {
        edges.push((i, i + 1));
    }
    for i in 0..spine {
        for l in 0..legs {
            edges.push((i, spine + i * legs + l));
        }
    }
    Graph::from_edges(n, &edges).expect("valid caterpillar")
}

/// A barbell: two cliques of `clique` vertices joined by a path of `bridge`
/// vertices (clique A is `0..clique`, the bridge follows, clique B is last).
/// Two zones of maximal contention separated by a long thin channel —
/// broadcast must win a leader-election-like race at both ends and relay
/// through the middle. Diameter `bridge + 3` for `clique ≥ 2`.
///
/// # Panics
///
/// Panics if `clique < 2`.
pub fn barbell(clique: usize, bridge: usize) -> Graph {
    assert!(clique >= 2, "barbell needs cliques of at least 2");
    let n = 2 * clique + bridge;
    let mut edges = Vec::new();
    for base in [0, clique + bridge] {
        for u in 0..clique {
            for v in u + 1..clique {
                edges.push((base + u, base + v));
            }
        }
    }
    for i in 0..bridge.saturating_sub(1) {
        edges.push((clique + i, clique + i + 1));
    }
    // A's attachment meets the bridge head — or B directly when bridge = 0.
    edges.push((0, clique));
    if bridge > 0 {
        edges.push((clique + bridge - 1, clique + bridge));
    }
    Graph::from_edges(n, &edges).expect("valid barbell")
}

/// A lollipop: a clique of `clique` vertices with a path of `tail` vertices
/// hanging off vertex 0. Mixes high contention (the clique) with a long
/// synchronization chain (the tail) — the two costs Theorems 1 and 2 tease
/// apart.
///
/// # Panics
///
/// Panics if `clique < 2`.
pub fn lollipop(clique: usize, tail: usize) -> Graph {
    assert!(clique >= 2);
    let n = clique + tail;
    let mut edges = Vec::new();
    for u in 0..clique {
        for v in u + 1..clique {
            edges.push((u, v));
        }
    }
    for i in 0..tail {
        let prev = if i == 0 { 0 } else { clique + i - 1 };
        edges.push((prev, clique + i));
    }
    Graph::from_edges(n, &edges).expect("valid lollipop")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_shape() {
        let g = path(6);
        assert_eq!(g.n(), 6);
        assert_eq!(g.m(), 5);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.diameter_exact(), Some(5));
    }

    #[test]
    fn path_of_one() {
        let g = path(1);
        assert_eq!(g.n(), 1);
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(7);
        assert_eq!(g.m(), 7);
        assert!((0..7).all(|v| g.degree(v) == 2));
        assert_eq!(g.diameter_exact(), Some(3));
    }

    #[test]
    fn complete_shape() {
        let g = complete(5);
        assert_eq!(g.m(), 10);
        assert_eq!(g.diameter_exact(), Some(1));
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn star_shape() {
        let g = star(9);
        assert_eq!(g.n(), 10);
        assert_eq!(g.degree(0), 9);
        assert_eq!(g.diameter_exact(), Some(2));
    }

    #[test]
    fn k2k_matches_paper_gadget() {
        let g = k2k(4);
        assert_eq!(g.n(), 6);
        assert_eq!(g.m(), 8);
        // s and t are not adjacent.
        assert!(!g.has_edge(0, 1));
        // Every middle sees both s and t.
        for m in 2..6 {
            assert!(g.has_edge(0, m));
            assert!(g.has_edge(1, m));
            assert_eq!(g.degree(m), 2);
        }
        assert_eq!(g.diameter_exact(), Some(2));
    }

    #[test]
    fn complete_bipartite_shape() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.n(), 7);
        assert_eq!(g.m(), 12);
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(0, 3));
    }

    #[test]
    fn grid_shape() {
        let g = grid(4, 3);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 4 * 2 + 3 * 3); // horizontal + vertical
        assert_eq!(g.diameter_exact(), Some(5));
        assert!(g.max_degree() <= 4);
    }

    #[test]
    fn ladder_diameter() {
        let g = ladder(10);
        assert_eq!(g.n(), 20);
        assert_eq!(g.diameter_exact(), Some(10));
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn complete_tree_shape() {
        let g = complete_tree(2, 3);
        assert_eq!(g.n(), 15);
        assert_eq!(g.m(), 14);
        assert!(g.is_connected());
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(4);
        assert_eq!(g.n(), 16);
        assert_eq!(g.m(), 32);
        assert!((0..16).all(|v| g.degree(v) == 4));
        assert_eq!(g.diameter_exact(), Some(4));
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(5, 3);
        assert_eq!(g.n(), 20);
        assert!(g.is_connected());
        // Interior spine vertex: 2 spine neighbors + 3 legs.
        assert_eq!(g.degree(2), 5);
        // A leg is a leaf.
        assert_eq!(g.degree(6), 1);
    }

    #[test]
    fn barbell_shape() {
        let g = barbell(4, 3);
        assert_eq!(g.n(), 11);
        assert!(g.is_connected());
        assert_eq!(g.diameter_exact(), Some(6)); // bridge + 3
        assert_eq!(g.degree(0), 4); // 3 clique + bridge head
        assert_eq!(g.degree(5), 2); // bridge interior
    }

    #[test]
    fn barbell_without_bridge_is_two_joined_cliques() {
        let g = barbell(3, 0);
        assert_eq!(g.n(), 6);
        assert!(g.is_connected());
        assert_eq!(g.diameter_exact(), Some(3));
    }

    #[test]
    fn lollipop_shape() {
        let g = lollipop(4, 6);
        assert_eq!(g.n(), 10);
        assert!(g.is_connected());
        assert_eq!(g.degree(0), 4); // 3 clique + first tail vertex
        assert_eq!(g.diameter_exact(), Some(7));
    }
}
