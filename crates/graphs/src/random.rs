//! Randomized topology families (seeded, reproducible).

use ebc_radio::rng::node_rng;
use ebc_radio::Graph;
use rand::seq::SliceRandom;
use rand::Rng;

/// A uniformly random labelled tree on `n` vertices (random attachment to a
/// random permutation — every vertex attaches to a uniformly random earlier
/// vertex, then labels are shuffled). Connected by construction.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_tree(n: usize, seed: u64) -> Graph {
    assert!(n >= 1);
    let mut rng = node_rng(seed, 0, stream_tag(0));
    let mut perm: Vec<usize> = (0..n).collect();
    perm.shuffle(&mut rng);
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    for i in 1..n {
        let j = rng.gen_range(0..i);
        edges.push((perm[i], perm[j]));
    }
    Graph::from_edges(n, &edges).expect("valid random tree")
}

/// An Erdős–Rényi `G(n, p)` conditioned on connectivity: samples each edge
/// independently with probability `p`, then adds the edges of a random
/// spanning tree so the result is always connected (a standard
/// "connected G(n,p)" surrogate; for `p` above the connectivity threshold
/// the added tree changes almost nothing).
///
/// # Panics
///
/// Panics if `n == 0` or `p` is not in `[0, 1]`.
pub fn gnp_connected(n: usize, p: f64, seed: u64) -> Graph {
    assert!(n >= 1);
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut rng = node_rng(seed, 1, stream_tag(1));
    let mut edges = Vec::new();
    for u in 0..n {
        for v in u + 1..n {
            if rng.gen_bool(p) {
                edges.push((u, v));
            }
        }
    }
    // Random spanning tree for connectivity.
    let tree = random_tree(n, seed ^ 0x9e3779b97f4a7c15);
    for u in 0..n {
        for v in tree.neighbors(u) {
            if u < v {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(n, &edges).expect("valid gnp")
}

/// A random connected graph with maximum degree at most `max_deg`: starts
/// from a random Hamiltonian-path backbone (degree ≤ 2) and adds random
/// extra edges subject to the degree cap.
///
/// `extra_edge_factor` controls density: the generator attempts
/// `extra_edge_factor * n` additional edges.
///
/// # Panics
///
/// Panics if `n == 0` or `max_deg < 2`.
pub fn bounded_degree(n: usize, max_deg: usize, extra_edge_factor: f64, seed: u64) -> Graph {
    assert!(n >= 1);
    assert!(max_deg >= 2, "need max_deg >= 2 for a connected backbone");
    let mut rng = node_rng(seed, 2, stream_tag(2));
    let mut perm: Vec<usize> = (0..n).collect();
    perm.shuffle(&mut rng);
    let mut deg = vec![0usize; n];
    let mut edges = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for w in perm.windows(2) {
        edges.push((w[0], w[1]));
        seen.insert((w[0].min(w[1]), w[0].max(w[1])));
        deg[w[0]] += 1;
        deg[w[1]] += 1;
    }
    let attempts = (extra_edge_factor * n as f64) as usize;
    for _ in 0..attempts {
        if n < 2 {
            break;
        }
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        let key = (u.min(v), u.max(v));
        if u != v && deg[u] < max_deg && deg[v] < max_deg && !seen.contains(&key) {
            edges.push((u, v));
            seen.insert(key);
            deg[u] += 1;
            deg[v] += 1;
        }
    }
    Graph::from_edges(n, &edges).expect("valid bounded-degree graph")
}

/// A "cluster chain": `blocks` cliques of size `block_size`, consecutive
/// cliques joined by a single bridge edge. High local contention with
/// diameter `Θ(blocks)` — a stress case for clustering-based broadcast.
///
/// # Panics
///
/// Panics if `blocks == 0` or `block_size < 2`.
pub fn cluster_chain(blocks: usize, block_size: usize, seed: u64) -> Graph {
    assert!(blocks >= 1 && block_size >= 2);
    let mut rng = node_rng(seed, 3, stream_tag(3));
    let n = blocks * block_size;
    let mut edges = Vec::new();
    for b in 0..blocks {
        let base = b * block_size;
        for u in 0..block_size {
            for v in u + 1..block_size {
                edges.push((base + u, base + v));
            }
        }
        if b + 1 < blocks {
            let u = base + rng.gen_range(0..block_size);
            let v = (b + 1) * block_size + rng.gen_range(0..block_size);
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, &edges).expect("valid cluster chain")
}

/// A random geometric (unit-disk) graph: `n` points uniform in the unit
/// square, an edge wherever two points are within `radius`, plus the edges
/// of a random spanning tree so the result is always connected (the same
/// "connected surrogate" trick as [`gnp_connected`]; above the connectivity
/// threshold `r = Θ(√(ln n / n))` the added tree changes almost nothing).
///
/// The radio-network interpretation is literal: vertices are transceivers
/// on a plane and `radius` is transmission range, so collision patterns are
/// spatially correlated — unlike any of the combinatorial families.
///
/// # Panics
///
/// Panics if `n == 0` or `radius` is not positive.
pub fn unit_disk(n: usize, radius: f64, seed: u64) -> Graph {
    assert!(n >= 1);
    assert!(radius > 0.0, "radius must be positive");
    let mut rng = node_rng(seed, 4, stream_tag(4));
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)))
        .collect();
    let mut edges = disk_edges(&pts, radius);
    let tree = random_tree(n, seed ^ 0xd15c_0000_0000_0001);
    for u in 0..n {
        for v in tree.neighbors(u) {
            if u < v {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(n, &edges).expect("valid unit-disk graph")
}

/// All point pairs within `radius`, as `(lo, hi)` index pairs. Grid-bucket
/// neighbor lookup (cell size = `radius`, 3×3 neighborhood scan), so cost
/// is `O(n · deg)` instead of the all-pairs `O(n²)` — the difference
/// between seconds and hours on million-point coordinate datasets. The
/// edge *set* is exactly the all-pairs one, so graphs built from it are
/// bit-identical to the old construction ([`Graph::from_edges`] sorts).
///
/// # Panics
///
/// Panics if `radius` is not positive or a coordinate is non-finite.
pub(crate) fn disk_edges(pts: &[(f64, f64)], radius: f64) -> Vec<(usize, usize)> {
    assert!(radius > 0.0, "radius must be positive");
    for &(x, y) in pts {
        assert!(x.is_finite() && y.is_finite(), "non-finite coordinate");
    }
    let r2 = radius * radius;
    let key = |x: f64, y: f64| ((x / radius).floor() as i64, (y / radius).floor() as i64);
    let mut buckets: std::collections::HashMap<(i64, i64), Vec<u32>> =
        std::collections::HashMap::new();
    for (i, &(x, y)) in pts.iter().enumerate() {
        buckets.entry(key(x, y)).or_default().push(i as u32);
    }
    let mut edges = Vec::new();
    for (u, &(ux, uy)) in pts.iter().enumerate() {
        let (cx, cy) = key(ux, uy);
        for dx in -1..=1i64 {
            for dy in -1..=1i64 {
                let Some(cands) = buckets.get(&(cx + dx, cy + dy)) else {
                    continue;
                };
                for &v in cands {
                    let v = v as usize;
                    if v <= u {
                        continue;
                    }
                    let (vx, vy) = pts[v];
                    let ddx = ux - vx;
                    let ddy = uy - vy;
                    if ddx * ddx + ddy * ddy <= r2 {
                        edges.push((u, v));
                    }
                }
            }
        }
    }
    edges
}

/// Internal: distinct derivation streams for the generators in this module.
fn stream_tag(k: u64) -> u64 {
    0x6772_6170_6873_0000 | k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_tree_is_tree() {
        for seed in 0..10 {
            let g = random_tree(50, seed);
            assert_eq!(g.m(), 49);
            assert!(g.is_connected());
        }
    }

    #[test]
    fn random_tree_singleton() {
        let g = random_tree(1, 0);
        assert_eq!(g.n(), 1);
    }

    #[test]
    fn gnp_connected_always_connected() {
        for seed in 0..10 {
            let g = gnp_connected(40, 0.02, seed);
            assert!(g.is_connected());
        }
    }

    #[test]
    fn gnp_dense_has_many_edges() {
        let g = gnp_connected(40, 0.5, 7);
        assert!(g.m() > 40 * 39 / 8, "m = {}", g.m());
    }

    #[test]
    fn bounded_degree_respects_cap() {
        for seed in 0..10 {
            let g = bounded_degree(100, 4, 2.0, seed);
            assert!(g.is_connected());
            assert!(g.max_degree() <= 4, "Δ = {}", g.max_degree());
        }
    }

    #[test]
    fn bounded_degree_denser_than_path() {
        let g = bounded_degree(200, 8, 3.0, 1);
        assert!(g.m() > 250, "m = {}", g.m());
    }

    #[test]
    fn cluster_chain_connected_with_expected_size() {
        let g = cluster_chain(5, 6, 3);
        assert_eq!(g.n(), 30);
        assert!(g.is_connected());
        // Diameter is Θ(blocks): each block is a clique.
        let d = g.diameter_exact().unwrap();
        assert!((4..=14).contains(&d), "D = {d}");
    }

    #[test]
    fn unit_disk_connected_and_geometric() {
        for seed in 0..10 {
            let g = unit_disk(60, 0.25, seed);
            assert_eq!(g.n(), 60);
            assert!(g.is_connected());
        }
        // A generous radius yields a dense graph; a tiny one degenerates to
        // roughly the backbone tree.
        assert!(unit_disk(60, 0.8, 1).m() > 300);
        assert!(unit_disk(60, 1e-6, 1).m() < 80);
    }

    #[test]
    fn disk_edges_matches_the_all_pairs_scan() {
        // Differential pin: the grid-bucket lookup must reproduce the old
        // O(n²) construction's edge set exactly, across radii spanning
        // sub-cell to whole-square and clustered/degenerate layouts.
        let mut rng = node_rng(99, 0, 0xd1ff);
        for case in 0..12 {
            let n = 5 + case * 7;
            let mut pts: Vec<(f64, f64)> = (0..n)
                .map(|_| (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)))
                .collect();
            if case % 3 == 0 {
                // Coincident points and tight clusters stress the buckets.
                pts[0] = pts[n - 1];
                pts[1] = (pts[0].0 + 1e-12, pts[0].1);
            }
            for radius in [1e-6, 0.07, 0.3, 0.9, 2.0] {
                let r2 = radius * radius;
                let mut naive = Vec::new();
                for u in 0..n {
                    for v in u + 1..n {
                        let dx = pts[u].0 - pts[v].0;
                        let dy = pts[u].1 - pts[v].1;
                        if dx * dx + dy * dy <= r2 {
                            naive.push((u, v));
                        }
                    }
                }
                let mut fast = disk_edges(&pts, radius);
                fast.sort_unstable();
                naive.sort_unstable();
                assert_eq!(fast, naive, "n = {n}, radius = {radius}");
            }
        }
    }

    #[test]
    fn generators_are_reproducible() {
        assert_eq!(random_tree(30, 5), random_tree(30, 5));
        assert_eq!(gnp_connected(30, 0.1, 5), gnp_connected(30, 0.1, 5));
        assert_eq!(bounded_degree(30, 3, 1.0, 5), bounded_degree(30, 3, 1.0, 5));
        assert_eq!(unit_disk(30, 0.3, 5), unit_disk(30, 0.3, 5));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(random_tree(30, 5), random_tree(30, 6));
    }
}
