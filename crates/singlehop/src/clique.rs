//! A fast single-hop channel.

use ebc_radio::{Action, EnergyMeter, Feedback, Model, NodeId, Slot};

/// A single-hop network: every device is a neighbor of every other.
///
/// Channel resolution is `O(#active devices)` per slot. Devices never hear
/// their own transmission (a device is not its own neighbor), which makes
/// full duplex meaningful: a unique full-duplex sender hears *silence* and
/// can conclude it was the unique transmitter — the self-detection trick
/// used to terminate leader election.
#[derive(Debug)]
pub struct Clique {
    n: usize,
    model: Model,
    meter: EnergyMeter,
    clock: Slot,
}

impl Clique {
    /// A single-hop network of `n` devices under `model`.
    ///
    /// # Panics
    ///
    /// Panics if `model` is [`Model::Local`]-incompatible — all five models
    /// are accepted; this constructor never panics for `n ≥ 1`.
    pub fn new(n: usize, model: Model) -> Self {
        assert!(n >= 1);
        Clique {
            n,
            model,
            meter: EnergyMeter::new(n),
            clock: 0,
        }
    }

    /// Number of devices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The collision model.
    pub fn model(&self) -> Model {
        self.model
    }

    /// The energy meter.
    pub fn meter(&self) -> &EnergyMeter {
        &self.meter
    }

    /// The current slot.
    pub fn now(&self) -> Slot {
        self.clock
    }

    /// Advances the clock over idle slots.
    pub fn skip(&mut self, slots: u64) {
        self.clock += slots;
    }

    /// Executes one slot. `actions` lists the non-idle devices; everyone
    /// else idles. Returns `(device, feedback)` for each device that
    /// listened, in the order given.
    ///
    /// # Panics
    ///
    /// Panics if a device id is out of range or appears twice.
    pub fn slot<M: Clone>(
        &mut self,
        actions: &[(NodeId, Action<M>)],
    ) -> Vec<(NodeId, Feedback<M>)> {
        let mut senders: Vec<(NodeId, M)> = Vec::new();
        let mut listeners: Vec<NodeId> = Vec::new();
        let now = self.clock;
        let mut seen = vec![false; self.n];
        for (v, a) in actions {
            assert!(*v < self.n, "device {v} out of range");
            assert!(!seen[*v], "device {v} acted twice in one slot");
            seen[*v] = true;
            match a {
                Action::Idle => {}
                Action::Send(m) => {
                    self.meter.charge_send(*v, now);
                    senders.push((*v, m.clone()));
                }
                Action::Listen => {
                    self.meter.charge_listen(*v, now);
                    listeners.push(*v);
                }
                Action::SendListen(m) => {
                    self.meter.charge_send(*v, now);
                    self.meter.charge_listen(*v, now);
                    senders.push((*v, m.clone()));
                    listeners.push(*v);
                }
            }
        }
        senders.sort_by_key(|(v, _)| *v);
        let out = listeners
            .iter()
            .map(|&v| {
                let fb = ebc_radio::resolve(
                    self.model,
                    senders
                        .iter()
                        .filter(|(u, _)| *u != v)
                        .map(|(u, m)| (*u, m.clone())),
                );
                (v, fb)
            })
            .collect();
        self.clock += 1;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_sender_reaches_all_listeners() {
        let mut c = Clique::new(4, Model::Cd);
        let fb = c.slot(&[
            (0, Action::Send("m")),
            (1, Action::Listen),
            (2, Action::Listen),
        ]);
        assert_eq!(fb.len(), 2);
        assert!(fb.iter().all(|(_, f)| *f == Feedback::One("m")));
        assert_eq!(c.meter().energy(3), 0);
    }

    #[test]
    fn two_senders_are_noise_in_cd_silence_in_nocd() {
        let mut cd = Clique::new(3, Model::Cd);
        let fb = cd.slot(&[
            (0, Action::Send(1u8)),
            (1, Action::Send(2u8)),
            (2, Action::Listen),
        ]);
        assert_eq!(fb, vec![(2, Feedback::Noise)]);

        let mut nocd = Clique::new(3, Model::NoCd);
        let fb = nocd.slot(&[
            (0, Action::Send(1u8)),
            (1, Action::Send(2u8)),
            (2, Action::Listen),
        ]);
        assert_eq!(fb, vec![(2, Feedback::Silence)]);
    }

    #[test]
    fn unique_duplex_sender_self_detects_via_silence() {
        let mut c = Clique::new(3, Model::Cd);
        let fb = c.slot(&[(0, Action::SendListen("m")), (1, Action::Listen)]);
        // Sender 0 hears silence (it was unique); listener 1 hears the message.
        assert!(fb.contains(&(0, Feedback::Silence)));
        assert!(fb.contains(&(1, Feedback::One("m"))));
    }

    #[test]
    fn duplex_sender_hears_other_sender() {
        let mut c = Clique::new(3, Model::Cd);
        let fb = c.slot(&[(0, Action::SendListen("a")), (1, Action::SendListen("b"))]);
        assert!(fb.contains(&(0, Feedback::One("b"))));
        assert!(fb.contains(&(1, Feedback::One("a"))));
    }

    #[test]
    fn three_duplex_senders_hear_noise() {
        let mut c = Clique::new(3, Model::Cd);
        let fb = c.slot(&[
            (0, Action::SendListen("a")),
            (1, Action::SendListen("b")),
            (2, Action::SendListen("c")),
        ]);
        assert!(fb.iter().all(|(_, f)| *f == Feedback::Noise));
    }

    #[test]
    fn energy_metered_per_action() {
        let mut c = Clique::new(2, Model::NoCd);
        c.slot(&[(0, Action::SendListen(0u8)), (1, Action::Listen)]);
        c.slot::<u8>(&[(1, Action::Listen)]);
        assert_eq!(c.meter().energy(0), 2);
        assert_eq!(c.meter().energy(1), 2);
        assert_eq!(c.now(), 2);
    }

    #[test]
    #[should_panic(expected = "acted twice")]
    fn double_action_rejected() {
        let mut c = Clique::new(2, Model::NoCd);
        c.slot(&[(0, Action::Send(1u8)), (0, Action::Listen)]);
    }
}
