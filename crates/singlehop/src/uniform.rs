//! Uniform leader election in single-hop CD networks.
//!
//! The schedule is *uniform* in the paper's sense (§4): at each step every
//! participant transmits with the same probability `p_t = 2^{-k_t}`, where
//! `k_t` depends only on the public feedback history. The implementation
//! follows the Nakano–Olariu recipe the paper cites for Lemma 8:
//!
//! 1. **Probe**: try `k = 1, 2, 4, 8, …` (i.e. `p = 2^{-k}` falling doubly
//!    exponentially) until the channel stops being noisy. This brackets
//!    `log₂ n` within a factor 2 in `O(log log n′)` slots.
//! 2. **Search**: binary-search `k` inside the bracket, `O(log log n′)`
//!    slots.
//! 3. **Race**: repeat at the located `k`, nudging `k` by ±1 on
//!    noise/silence. Each slot elects a unique transmitter with constant
//!    probability, so the race ends in `O(1)` expected slots with an
//!    exponential tail — `O(log 1/f)` slots give failure probability `f`.
//!
//! The same state machine doubles as the receiver-side simulation in the
//! multi-hop SR-communication transformation (Lemma 8): there, "one step"
//! becomes "one epoch" and the feedback is what the receiver heard in the
//! single slot of the epoch it listened to.

use ebc_radio::{Action, Feedback, Model, NodeId};
use rand::Rng;

use crate::Clique;

/// The three channel observations that drive a uniform schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Obs {
    /// No transmitter was heard.
    Silence,
    /// Exactly one transmitter was heard (success).
    Unique,
    /// A collision was detected (CD only).
    Noise,
}

impl Obs {
    /// Collapses a [`Feedback`] into an observation.
    ///
    /// Under No-CD a collision is indistinguishable from silence, so
    /// [`Feedback::Silence`] maps to [`Obs::Silence`] in both models —
    /// faithfully to what the device can actually know.
    pub fn from_feedback<M>(fb: &Feedback<M>) -> Obs {
        match fb {
            Feedback::Silence => Obs::Silence,
            Feedback::Noise | Feedback::Beep => Obs::Noise,
            Feedback::One(_) => Obs::Unique,
            Feedback::Many(v) if v.len() == 1 => Obs::Unique,
            Feedback::Many(_) => Obs::Noise,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Probe,
    Search { lo: u32, hi: u32 },
    Race,
}

/// The public, history-determined transmission schedule `k_t` of a uniform
/// leader-election algorithm in single-hop CD.
///
/// Drive it with [`observe`](UniformLeaderElection::observe); read the
/// current exponent with [`k`](UniformLeaderElection::k) (participants
/// transmit with probability `2^{-k}`).
#[derive(Debug, Clone)]
pub struct UniformLeaderElection {
    phase: Phase,
    k: u32,
    k_max: u32,
    steps: u32,
    done: bool,
}

impl UniformLeaderElection {
    /// A schedule for networks of at most `n_upper` participants.
    ///
    /// # Panics
    ///
    /// Panics if `n_upper == 0`.
    pub fn new(n_upper: usize) -> Self {
        assert!(n_upper >= 1);
        let k_max = (usize::BITS - n_upper.leading_zeros()) + 2;
        UniformLeaderElection {
            phase: Phase::Probe,
            k: 1,
            k_max,
            steps: 0,
            done: false,
        }
    }

    /// The current exponent: participants transmit with probability `2^{-k}`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The number of observations consumed so far.
    pub fn steps(&self) -> u32 {
        self.steps
    }

    /// Whether a unique transmission has been observed.
    pub fn succeeded(&self) -> bool {
        self.done
    }

    /// Feeds the channel observation for the current step and advances the
    /// schedule.
    pub fn observe(&mut self, obs: Obs) {
        self.steps += 1;
        if self.done {
            return;
        }
        if obs == Obs::Unique {
            self.done = true;
            return;
        }
        match self.phase {
            Phase::Probe => match obs {
                Obs::Noise => {
                    let next = (self.k * 2).min(self.k_max);
                    if next == self.k {
                        // Capped out without leaving the noisy regime; fall
                        // back to racing at the cap.
                        self.phase = Phase::Race;
                    } else {
                        self.k = next;
                    }
                }
                Obs::Silence => {
                    if self.k <= 1 {
                        self.phase = Phase::Race;
                    } else {
                        let lo = self.k / 2;
                        let hi = self.k;
                        self.k = (lo + hi) / 2;
                        self.phase = Phase::Search { lo, hi };
                    }
                }
                Obs::Unique => unreachable!(),
            },
            Phase::Search { lo, hi } => {
                let (lo, hi) = match obs {
                    Obs::Noise => (self.k, hi),
                    Obs::Silence => (lo, self.k),
                    Obs::Unique => unreachable!(),
                };
                if hi - lo <= 1 {
                    self.k = hi;
                    self.phase = Phase::Race;
                } else {
                    self.k = (lo + hi) / 2;
                    self.phase = Phase::Search { lo, hi };
                }
            }
            Phase::Race => {
                self.k = match obs {
                    Obs::Noise => (self.k + 1).min(self.k_max),
                    Obs::Silence => self.k.saturating_sub(1).max(1),
                    Obs::Unique => unreachable!(),
                };
            }
        }
    }
}

/// The result of a single-hop leader election run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeResult {
    /// The elected device, if the run succeeded within the slot budget.
    pub leader: Option<NodeId>,
    /// Slots consumed.
    pub slots: u64,
}

/// Runs uniform leader election among `participants` on a full-duplex CD
/// clique: every participant transmits its id with probability `2^{-k_t}`
/// while listening, so a unique transmitter self-detects via silence and
/// everyone else receives its id.
///
/// Returns after a leader is elected or `max_slots` have elapsed.
///
/// # Panics
///
/// Panics if `participants` is empty.
pub fn run_uniform_le(
    clique: &mut Clique,
    participants: &[NodeId],
    rng: &mut impl Rng,
    max_slots: u64,
) -> LeResult {
    assert!(!participants.is_empty());
    assert_eq!(
        clique.model(),
        Model::Cd,
        "uniform LE requires the CD model"
    );
    let mut sched = UniformLeaderElection::new(clique.n());
    let mut actions: Vec<(NodeId, Action<u64>)> = Vec::with_capacity(participants.len());
    for slot in 0..max_slots {
        let p = 0.5_f64.powi(sched.k() as i32);
        actions.clear();
        for &v in participants {
            if rng.gen_bool(p) {
                actions.push((v, Action::SendListen(v as u64)));
            } else {
                actions.push((v, Action::Listen));
            }
        }
        let sent: Vec<NodeId> = actions
            .iter()
            .filter(|(_, a)| matches!(a, Action::SendListen(_)))
            .map(|(v, _)| *v)
            .collect();
        let fbs = clique.slot(&actions);
        // All participants share the channel view; derive the public
        // observation from any non-transmitting listener, or from the
        // self-detection rule when everyone transmitted.
        let obs = public_observation(&fbs, &sent);
        sched.observe(obs);
        if obs == Obs::Unique {
            return LeResult {
                leader: Some(sent[0]),
                slots: slot + 1,
            };
        }
        if sent.len() == 1 {
            // The unique sender heard silence and self-detected; everyone
            // else heard its message. Covered by Obs::Unique above via
            // listeners; this branch is only reachable if all participants
            // transmitted — impossible with len == 1 unless there is a
            // single participant, which self-detects:
            return LeResult {
                leader: Some(sent[0]),
                slots: slot + 1,
            };
        }
    }
    LeResult {
        leader: None,
        slots: max_slots,
    }
}

/// Derives the slot's public observation from the listeners' feedback.
fn public_observation(fbs: &[(NodeId, Feedback<u64>)], sent: &[NodeId]) -> Obs {
    // A non-transmitting listener sees the true channel state.
    for (v, fb) in fbs {
        if !sent.contains(v) {
            return Obs::from_feedback(fb);
        }
    }
    // Everyone transmitted: each hears the others. With exactly one sender
    // overall, it hears silence (Unique via self-detection); with two, each
    // hears the other as One — publicly that is still a collision.
    match sent.len() {
        0 => Obs::Silence,
        1 => Obs::Unique,
        _ => Obs::Noise,
    }
}

/// Estimates the number of participants within a constant factor using the
/// probe + binary-search phases only (the paper's ApproximateCounting).
///
/// Each participant transmits with probability `2^{-k_t}` full-duplex.
/// Returns `(estimate, slots)`. The estimate is `2^{k*}` where `k*` is the
/// exponent at which the channel transitions from noisy to quiet; with
/// high probability this is `Θ(#participants)`.
///
/// # Panics
///
/// Panics if `participants` is empty.
pub fn approximate_count(
    clique: &mut Clique,
    participants: &[NodeId],
    rng: &mut impl Rng,
    trials_per_step: u32,
) -> (u64, u64) {
    assert!(!participants.is_empty());
    let mut sched = UniformLeaderElection::new(clique.n());
    let mut slots = 0u64;
    let mut actions: Vec<(NodeId, Action<u64>)> = Vec::new();
    loop {
        if matches!(sched.phase, Phase::Race) || sched.succeeded() {
            return (1u64 << sched.k().min(62), slots);
        }
        // Majority vote over repeated trials de-noises each probe step.
        let mut noisy = 0u32;
        for _ in 0..trials_per_step {
            let p = 0.5_f64.powi(sched.k() as i32);
            actions.clear();
            for &v in participants {
                if rng.gen_bool(p) {
                    actions.push((v, Action::SendListen(v as u64)));
                } else {
                    actions.push((v, Action::Listen));
                }
            }
            let sent: Vec<NodeId> = actions
                .iter()
                .filter(|(_, a)| matches!(a, Action::SendListen(_)))
                .map(|(v, _)| *v)
                .collect();
            let fbs = clique.slot(&actions);
            slots += 1;
            if public_observation(&fbs, &sent) == Obs::Noise {
                noisy += 1;
            }
        }
        let obs = if noisy * 2 > trials_per_step {
            Obs::Noise
        } else {
            Obs::Silence
        };
        sched.observe(obs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebc_radio::rng::node_rng;

    #[test]
    fn obs_from_feedback_mapping() {
        assert_eq!(Obs::from_feedback(&Feedback::<u8>::Silence), Obs::Silence);
        assert_eq!(Obs::from_feedback(&Feedback::<u8>::Noise), Obs::Noise);
        assert_eq!(Obs::from_feedback(&Feedback::One(3u8)), Obs::Unique);
        assert_eq!(Obs::from_feedback(&Feedback::Many(vec![1u8])), Obs::Unique);
        assert_eq!(
            Obs::from_feedback(&Feedback::Many(vec![1u8, 2])),
            Obs::Noise
        );
    }

    #[test]
    fn schedule_probe_doubles_k_on_noise() {
        let mut s = UniformLeaderElection::new(1 << 12);
        assert_eq!(s.k(), 1);
        s.observe(Obs::Noise);
        assert_eq!(s.k(), 2);
        s.observe(Obs::Noise);
        assert_eq!(s.k(), 4);
        s.observe(Obs::Noise);
        assert_eq!(s.k(), 8);
    }

    #[test]
    fn schedule_search_narrows_bracket() {
        let mut s = UniformLeaderElection::new(1 << 12);
        for _ in 0..3 {
            s.observe(Obs::Noise); // k: 1 → 2 → 4 → 8
        }
        s.observe(Obs::Silence); // bracket (4, 8], k = 6
        assert_eq!(s.k(), 6);
        s.observe(Obs::Noise); // bracket (6, 8], k = 7
        assert_eq!(s.k(), 7);
        s.observe(Obs::Silence); // hi=7, lo=6 → race at 7
        assert_eq!(s.k(), 7);
        assert_eq!(s.phase, Phase::Race);
    }

    #[test]
    fn schedule_stops_on_unique() {
        let mut s = UniformLeaderElection::new(64);
        s.observe(Obs::Noise);
        s.observe(Obs::Unique);
        assert!(s.succeeded());
        let k = s.k();
        s.observe(Obs::Noise);
        assert_eq!(s.k(), k, "schedule frozen after success");
    }

    #[test]
    fn race_walks_k_up_and_down_within_bounds() {
        let mut s = UniformLeaderElection::new(4);
        s.observe(Obs::Silence); // k=1 → race
        assert_eq!(s.phase, Phase::Race);
        s.observe(Obs::Silence);
        assert_eq!(s.k(), 1, "k never drops below 1");
        for _ in 0..20 {
            s.observe(Obs::Noise);
        }
        assert!(s.k() <= s.k_max);
    }

    #[test]
    fn le_elects_unique_leader_across_sizes() {
        for &n in &[2usize, 3, 8, 64, 500] {
            let mut ok = 0;
            for seed in 0..20u64 {
                let mut clique = Clique::new(n, Model::Cd);
                let parts: Vec<NodeId> = (0..n).collect();
                let mut rng = node_rng(seed, 0, 99);
                let res = run_uniform_le(&mut clique, &parts, &mut rng, 500);
                if let Some(l) = res.leader {
                    assert!(l < n);
                    ok += 1;
                }
            }
            assert!(ok >= 19, "n = {n}: only {ok}/20 elected");
        }
    }

    #[test]
    fn le_single_participant_self_detects() {
        let mut clique = Clique::new(5, Model::Cd);
        let mut rng = node_rng(7, 0, 99);
        let res = run_uniform_le(&mut clique, &[3], &mut rng, 200);
        assert_eq!(res.leader, Some(3));
    }

    #[test]
    fn le_slot_count_is_loglog_scale() {
        // For n = 2^14 participants the election should complete in far
        // fewer than log² n slots — loglog n + constant race steps.
        let n = 1 << 14;
        let mut total = 0u64;
        let runs = 10;
        for seed in 0..runs {
            let mut clique = Clique::new(n, Model::Cd);
            let parts: Vec<NodeId> = (0..n).collect();
            let mut rng = node_rng(seed, 1, 99);
            let res = run_uniform_le(&mut clique, &parts, &mut rng, 2_000);
            assert!(res.leader.is_some());
            total += res.slots;
        }
        let avg = total as f64 / runs as f64;
        assert!(avg < 60.0, "avg slots = {avg}");
    }

    #[test]
    fn approximate_count_within_factor_16() {
        for &n in &[16usize, 128, 1024] {
            let mut clique = Clique::new(n, Model::Cd);
            let parts: Vec<NodeId> = (0..n).collect();
            let mut rng = node_rng(42, 2, 99);
            let (est, _slots) = approximate_count(&mut clique, &parts, &mut rng, 9);
            let ratio = est as f64 / n as f64;
            assert!((1.0 / 16.0..=16.0).contains(&ratio), "n = {n}, est = {est}");
        }
    }

    #[test]
    fn le_energy_scales_with_slots_not_n() {
        let n = 4096;
        let mut clique = Clique::new(n, Model::Cd);
        let parts: Vec<NodeId> = (0..n).collect();
        let mut rng = node_rng(3, 3, 99);
        let res = run_uniform_le(&mut clique, &parts, &mut rng, 2_000);
        assert!(res.leader.is_some());
        // Each participant is active every slot (full duplex run), so per-
        // device energy is O(slots) — and slots is O(log log n).
        let max_e = clique.meter().max_energy();
        assert!(max_e <= 2 * res.slots, "max energy {max_e}");
    }
    #[test]
    fn approximate_count_monotone_in_expectation() {
        // Larger participant sets should not produce smaller estimates on
        // average (fixed seeds, generous margins).
        let avg = |n: usize| -> f64 {
            let mut tot = 0.0;
            for seed in 0..8u64 {
                let mut clique = Clique::new(n, Model::Cd);
                let parts: Vec<NodeId> = (0..n).collect();
                let mut rng = node_rng(seed, 4, 99);
                let (est, _) = approximate_count(&mut clique, &parts, &mut rng, 9);
                tot += est as f64;
            }
            tot / 8.0
        };
        assert!(avg(512) > avg(8), "{} !> {}", avg(512), avg(8));
    }

    #[test]
    fn le_respects_participant_subsets() {
        let mut clique = Clique::new(64, Model::Cd);
        let parts: Vec<NodeId> = (10..20).collect();
        let mut rng = node_rng(3, 5, 99);
        let res = run_uniform_le(&mut clique, &parts, &mut rng, 500);
        let l = res.leader.expect("elects");
        assert!((10..20).contains(&l));
        // Non-participants spent nothing.
        assert_eq!(clique.meter().energy(0), 0);
        assert_eq!(clique.meter().energy(63), 0);
    }
}
