//! Deterministic single-hop leader election by ID-interval binary search.
//!
//! Devices carry distinct IDs in `{1, …, N}`. The candidate interval is
//! halved each slot: candidates in the upper half transmit while everyone
//! listens (full duplex); hearing *anything* (a message or noise) keeps the
//! upper half, silence keeps the lower half. After `⌈log₂ N⌉` slots the
//! interval is a single ID, whose owner announces itself.
//!
//! Time and per-device energy are both `O(log N)` — the optimal bound for
//! deterministic single-hop leader election cited in the paper's §2.

use ebc_radio::{Action, Feedback, Model, NodeId};

use crate::Clique;

/// The outcome of a deterministic election.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetLeResult {
    /// The elected device (the candidate with the highest ID).
    pub leader: NodeId,
    /// Its ID.
    pub leader_id: u64,
    /// Slots consumed.
    pub slots: u64,
}

/// Elects the candidate with the *highest* ID among `candidates`.
///
/// `ids[v]` is the ID of device `v`; IDs must be distinct and in `1..=N`.
/// All `candidates` participate with full-duplex energy `O(log N)`.
///
/// # Panics
///
/// Panics if `candidates` is empty, an ID is out of `1..=N`, or the clique
/// is not a CD-capable model ([`Model::Cd`] or [`Model::CdStar`]).
pub fn det_leader_election(
    clique: &mut Clique,
    candidates: &[NodeId],
    ids: &[u64],
    id_space: u64,
) -> DetLeResult {
    assert!(!candidates.is_empty());
    assert!(
        matches!(clique.model(), Model::Cd | Model::CdStar),
        "deterministic LE needs collision detection"
    );
    for &v in candidates {
        assert!(
            (1..=id_space).contains(&ids[v]),
            "ID {} of device {v} outside 1..={id_space}",
            ids[v]
        );
    }
    let (mut lo, mut hi) = (1u64, id_space);
    let mut slots = 0u64;
    // Invariant: some candidate has an ID in [lo, hi].
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        // Candidates with ID in (mid, hi] transmit; all candidates listen.
        let actions: Vec<(NodeId, Action<u64>)> = candidates
            .iter()
            .map(|&v| {
                if ids[v] > mid && ids[v] <= hi {
                    (v, Action::SendListen(ids[v]))
                } else {
                    (v, Action::Listen)
                }
            })
            .collect();
        let senders: Vec<NodeId> = candidates
            .iter()
            .copied()
            .filter(|&v| ids[v] > mid && ids[v] <= hi)
            .collect();
        let fbs = clique.slot(&actions);
        slots += 1;
        let upper_occupied = occupied(&fbs, &senders);
        if upper_occupied {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    // The winner announces itself so that every candidate learns its
    // identity (one more slot).
    let winner = *candidates
        .iter()
        .find(|&&v| ids[v] == lo)
        .expect("interval invariant: a candidate holds the final ID");
    let actions: Vec<(NodeId, Action<u64>)> = candidates
        .iter()
        .map(|&v| {
            if v == winner {
                (v, Action::Send(winner as u64))
            } else {
                (v, Action::Listen)
            }
        })
        .collect();
    clique.slot(&actions);
    slots += 1;
    DetLeResult {
        leader: winner,
        leader_id: lo,
        slots,
    }
}

/// Whether the tested half contained at least one transmitter, from the
/// listeners' shared channel view.
fn occupied(fbs: &[(NodeId, Feedback<u64>)], senders: &[NodeId]) -> bool {
    for (v, fb) in fbs {
        if !senders.contains(v) {
            return !matches!(fb, Feedback::Silence);
        }
    }
    // All candidates transmitted: 1 sender hears silence (it alone was
    // transmitting), ≥2 hear each other. Either way the half is occupied.
    !senders.is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids_identity(n: usize) -> Vec<u64> {
        (0..n).map(|v| v as u64 + 1).collect()
    }

    #[test]
    fn elects_highest_id() {
        let n = 16;
        let mut c = Clique::new(n, Model::Cd);
        let cands: Vec<NodeId> = vec![2, 5, 11, 13];
        let ids = ids_identity(n);
        let res = det_leader_election(&mut c, &cands, &ids, n as u64);
        assert_eq!(res.leader, 13);
        assert_eq!(res.leader_id, 14);
    }

    #[test]
    fn single_candidate_wins() {
        let mut c = Clique::new(8, Model::Cd);
        let ids = ids_identity(8);
        let res = det_leader_election(&mut c, &[4], &ids, 8);
        assert_eq!(res.leader, 4);
    }

    #[test]
    fn slots_are_logarithmic_in_id_space() {
        let n = 1024;
        let mut c = Clique::new(n, Model::Cd);
        let cands: Vec<NodeId> = (0..n).collect();
        let ids = ids_identity(n);
        let res = det_leader_election(&mut c, &cands, &ids, n as u64);
        assert_eq!(res.leader, n - 1);
        assert!(res.slots <= 12, "slots = {}", res.slots);
    }

    #[test]
    fn energy_is_logarithmic() {
        let n = 256;
        let mut c = Clique::new(n, Model::Cd);
        let cands: Vec<NodeId> = (0..n).collect();
        let ids = ids_identity(n);
        let res = det_leader_election(&mut c, &cands, &ids, n as u64);
        // Per-device energy ≤ 2 per slot (full duplex).
        assert!(c.meter().max_energy() <= 2 * res.slots);
        assert!(c.meter().max_energy() <= 20);
    }

    #[test]
    fn works_with_sparse_arbitrary_ids() {
        let n = 8;
        let mut c = Clique::new(n, Model::Cd);
        let mut ids = vec![0u64; n];
        ids[1] = 7;
        ids[3] = 100;
        ids[6] = 55;
        let res = det_leader_election(&mut c, &[1, 3, 6], &ids, 128);
        assert_eq!(res.leader, 3);
        assert_eq!(res.leader_id, 100);
    }

    #[test]
    fn deterministic_same_result_every_time() {
        let n = 32;
        let ids = ids_identity(n);
        let cands: Vec<NodeId> = (0..n).step_by(3).collect();
        let r1 = det_leader_election(&mut Clique::new(n, Model::Cd), &cands, &ids, n as u64);
        let r2 = det_leader_election(&mut Clique::new(n, Model::Cd), &cands, &ids, n as u64);
        assert_eq!(r1, r2);
    }

    #[test]
    #[should_panic(expected = "needs collision detection")]
    fn rejects_nocd() {
        let mut c = Clique::new(4, Model::NoCd);
        let ids = ids_identity(4);
        det_leader_election(&mut c, &[0], &ids, 4);
    }
    #[test]
    fn works_under_cdstar_model() {
        let n = 16;
        let mut c = Clique::new(n, Model::CdStar);
        let ids = ids_identity(n);
        let res = det_leader_election(&mut c, &[2, 9, 14], &ids, n as u64);
        assert_eq!(res.leader, 14);
    }
}
