//! Single-hop (clique) radio network primitives.
//!
//! The paper's multi-hop energy bounds are powered by single-hop machinery:
//!
//! * [`Clique`] — a fast single-hop channel (every device hears every other)
//!   with full-duplex support and exact energy metering. Equivalent to
//!   running [`ebc_radio::Sim`] on a complete graph, but `O(#active)` per
//!   slot instead of `O(Σ deg)`.
//! * [`UniformLeaderElection`] — a *uniform* leader-election schedule in the
//!   CD model à la Nakano–Olariu: every participant transmits with the
//!   same probability `2^{-k_t}` where `k_t` is a function of the public
//!   channel history only. Succeeds in `O(log log n′ + log 1/f)` slots.
//!   Lemma 8's generic transformation consumes exactly this object.
//! * [`approximate_count`] — the probe/binary-search phases alone, returning
//!   a constant-factor estimate of the number of participants.
//! * [`det`] — deterministic leader election by ID-interval binary search
//!   (`O(log N)` slots and energy), used by the deterministic lower bound
//!   discussion (§2) and as a unit-testable substrate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clique;
pub mod det;
mod uniform;

pub use clique::Clique;
pub use uniform::{approximate_count, run_uniform_le, LeResult, Obs, UniformLeaderElection};

pub use ebc_radio::{Action, EnergyMeter, Feedback, Model, NodeId, Slot};
