//! Vendored, dependency-free shim of the slice of the `rand` crate API this
//! workspace uses: [`rngs::SmallRng`] (xoshiro256++), the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits, and [`seq::SliceRandom::shuffle`].
//!
//! The workspace must build with no network access to crates.io, so the
//! root manifest patches `rand` to this path. The generators are
//! deterministic and seedable but make **no** cryptographic claims —
//! exactly like the real `SmallRng`. Swapping in the real crate is a
//! one-line change in the workspace manifest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The core of every random number generator: raw 32/64-bit output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-size byte array in the real crate).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 —
    /// the same construction the real `rand` uses.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64_next(&mut sm);
            let bytes = x.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[inline]
fn splitmix64_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// User-facing convenience methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value from `range` (half-open, non-empty).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: Into<UniformRange<T>>,
    {
        let UniformRange { low, high } = range.into();
        T::sample_in(self, low, high)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // 53 uniform mantissa bits, exactly the real implementation's
        // resolution for `f64` sampling.
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }

    /// Samples a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types sampleable "from the standard distribution" (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A half-open `[low, high)` sampling range (what `gen_range` consumes).
pub struct UniformRange<T> {
    low: T,
    high: T,
}

impl<T> From<std::ops::Range<T>> for UniformRange<T> {
    fn from(r: std::ops::Range<T>) -> Self {
        UniformRange {
            low: r.start,
            high: r.end,
        }
    }
}

/// Types uniformly sampleable over a half-open range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Draws a uniform value in `[low, high)`; panics if the range is empty.
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as u128) - (low as u128);
                // Rejection sampling over u64 keeps the draw unbiased.
                let zone = u64::MAX - ((u64::MAX as u128 + 1) % span.max(1)) as u64;
                loop {
                    let x = rng.next_u64();
                    if x <= zone || span > u64::MAX as u128 {
                        return low + (x as u128 % span) as $t;
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let zone = u64::MAX - ((u64::MAX as u128 + 1) % span.max(1)) as u64;
                loop {
                    let x = rng.next_u64();
                    if x <= zone || span > u64::MAX as u128 {
                        return (low as i128 + (x as u128 % span) as i128) as $t;
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_signed!(i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + u * (high - low)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator: xoshiro256++ (the algorithm
    /// behind the real `SmallRng` on 64-bit targets).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods on slices: shuffling and random choice.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// The customary glob-import module, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::SmallRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let f: f64 = rng.gen_range(0.25..0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }
}
