//! Vendored, dependency-free shim of the slice of the `proptest` API this
//! workspace uses: [`Strategy`] with `prop_map`, range and tuple
//! strategies, [`any`], [`collection::vec`], [`option::of`], the
//! [`proptest!`] macro and the `prop_assert*` macros.
//!
//! The workspace must build with no network access to crates.io, so the
//! root manifest patches `proptest` to this path. Unlike the real
//! proptest there is **no shrinking** and no persisted failure file —
//! each test runs `cases` deterministically-seeded random cases and
//! `prop_assert*` failures panic with the case seed in the message, which
//! is enough to reproduce (seeding is derived from the case index alone).
//! Swapping in the real crate is a one-line change in the workspace
//! manifest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Run-time configuration: how many random cases each property runs.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The source of randomness handed to strategies, seeded per case.
pub struct TestRunner {
    rng: SmallRng,
}

impl TestRunner {
    /// A runner for case number `case` (deterministic across runs).
    pub fn for_case(case: u64) -> Self {
        TestRunner {
            rng: SmallRng::seed_from_u64(0xebc0_0000u64 ^ case.wrapping_mul(0x9e37_79b9)),
        }
    }

    /// The underlying RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

/// A generator of random values of an associated type.
///
/// The real proptest's `Strategy` produces shrinkable value *trees*; this
/// shim only ever needs plain values.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.base.generate(runner))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);

            #[allow(non_snake_case)]
            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.generate(runner),)*)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(runner: &mut TestRunner) -> bool {
        runner.rng().gen_bool(0.5)
    }
}

impl Arbitrary for u64 {
    fn arbitrary(runner: &mut TestRunner) -> u64 {
        runner.rng().gen()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(runner: &mut TestRunner) -> u32 {
        runner.rng().gen::<u64>() as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(runner: &mut TestRunner) -> usize {
        runner.rng().gen::<u64>() as usize
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner)
    }
}

/// A strategy for any value of `T` (mirrors `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRunner};
    use rand::Rng;

    /// A length specification: exact or a half-open range, as in proptest.
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                runner.rng().gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(runner)).collect()
        }
    }

    /// A strategy for `Vec`s of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Option strategies, mirroring `proptest::option`.
pub mod option {
    use super::{Strategy, TestRunner};
    use rand::Rng;

    /// The strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Option<S::Value> {
            // `Some` three times out of four, like the real default weight.
            if runner.rng().gen_bool(0.75) {
                Some(self.inner.generate(runner))
            } else {
                None
            }
        }
    }

    /// A strategy producing `None` or `Some(inner)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// The customary glob-import module, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Arbitrary, ProptestConfig, Strategy, TestRunner};
}

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministically-seeded cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]: one test item per recursion step.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strategies = ($($strat,)*);
            for case in 0..config.cases {
                let mut runner = $crate::TestRunner::for_case(u64::from(case));
                let ($($arg,)*) = $crate::Strategy::generate(&strategies, &mut runner);
                // Any panic in the body names the failing case for replay.
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| $body));
                if let Err(e) = result {
                    eprintln!("proptest shim: property failed at case {case}");
                    std::panic::resume_unwind(e);
                }
            }
        }
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
    (($cfg:expr);) => {};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut runner = TestRunner::for_case(1);
        for _ in 0..100 {
            let x = (3usize..9).generate(&mut runner);
            assert!((3..9).contains(&x));
        }
    }

    #[test]
    fn vec_exact_and_ranged_sizes() {
        let mut runner = TestRunner::for_case(2);
        let exact = crate::collection::vec(any::<bool>(), 16).generate(&mut runner);
        assert_eq!(exact.len(), 16);
        for _ in 0..50 {
            let v = crate::collection::vec(0u8..255, 0..6).generate(&mut runner);
            assert!(v.len() < 6);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_generates_and_runs(x in 0u32..10, flag in any::<bool>()) {
            prop_assert!(x < 10, "x = {}", x);
            let _ = flag;
        }
    }
}
