//! Vendored, dependency-free shim of the slice of the `rayon` API this
//! workspace uses: `par_iter()` / `into_par_iter()` plus `map` → `collect`
//! (and a few reductions), executed on `std::thread::scope` with one chunk
//! per available core.
//!
//! The workspace must build with no network access to crates.io, so the
//! root manifest patches `rayon` to this path. Unlike the real rayon there
//! is no work-stealing pool — items are split into `available_parallelism`
//! contiguous chunks, which is a fine schedule for the coarse-grained,
//! similar-cost seed sweeps the bench harness runs. Order of results is
//! preserved. Swapping in the real crate is a one-line change in the
//! workspace manifest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::num::NonZeroUsize;

/// Returns the number of worker threads used for parallel execution:
/// `EBC_NUM_THREADS` if set, else `std::thread::available_parallelism()`.
pub fn current_num_threads() -> usize {
    if let Ok(s) = std::env::var("EBC_NUM_THREADS") {
        if let Ok(n) = s.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `f` over `items`, in parallel chunks, preserving order.
fn par_map_vec<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = current_num_threads().min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::new();
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let mut out: Vec<Vec<R>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| scope.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            // A worker panic propagates; matches rayon's behavior.
            out.push(h.join().expect("parallel worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

/// A realized parallel iterator: the items plus the (fused) mapping.
///
/// The shim is *eager at collect*: combinators only record the closure,
/// and [`ParallelIterator::collect`] (or a reduction) runs the chunks.
pub struct ParIter<T, R, F>
where
    F: Fn(T) -> R + Sync,
{
    items: Vec<T>,
    f: F,
}

/// The subset of rayon's `ParallelIterator` trait methods this shim offers.
impl<T, R, F> ParIter<T, R, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    /// Maps each item through `g` (fused with the existing mapping).
    pub fn map<S, G>(self, g: G) -> ParIter<T, S, impl Fn(T) -> S + Sync>
    where
        S: Send,
        G: Fn(R) -> S + Sync,
    {
        let f = self.f;
        ParIter {
            items: self.items,
            f: move |t| g(f(t)),
        }
    }

    /// Executes the pipeline and collects results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        par_map_vec(self.items, &self.f).into_iter().collect()
    }

    /// Executes the pipeline and sums the results.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<R>,
    {
        par_map_vec(self.items, &self.f).into_iter().sum()
    }

    /// Executes the pipeline for its effects, discarding results.
    pub fn for_each(self) {
        let _ = par_map_vec(self.items, &self.f);
    }

    /// Executes the pipeline and reduces pairwise starting from `identity`.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> R
    where
        ID: Fn() -> R,
        OP: Fn(R, R) -> R,
    {
        par_map_vec(self.items, &self.f)
            .into_iter()
            .fold(identity(), op)
    }
}

/// Conversion into a parallel iterator over owned items.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The concrete parallel iterator.
    type Iter;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<T, T, fn(T) -> T>;

    fn into_par_iter(self) -> Self::Iter {
        ParIter {
            items: self,
            f: std::convert::identity,
        }
    }
}

macro_rules! impl_range_into_par {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = ParIter<$t, $t, fn($t) -> $t>;

            fn into_par_iter(self) -> Self::Iter {
                ParIter {
                    items: self.collect(),
                    f: std::convert::identity,
                }
            }
        }
    )*};
}

impl_range_into_par!(u32, u64, usize);

/// Conversion into a parallel iterator over `&Item`.
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed element type.
    type Item: Send + 'a;
    /// The concrete parallel iterator.
    type Iter;

    /// Returns a parallel iterator over borrowed items.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParIter<&'a T, &'a T, fn(&'a T) -> &'a T>;

    fn par_iter(&'a self) -> Self::Iter {
        ParIter {
            items: self.iter().collect(),
            f: std::convert::identity,
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParIter<&'a T, &'a T, fn(&'a T) -> &'a T>;

    fn par_iter(&'a self) -> Self::Iter {
        self.as_slice().par_iter()
    }
}

/// The customary glob-import module, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let squares: Vec<u64> = (0u64..1000).into_par_iter().map(|x| x * x).collect();
        let expect: Vec<u64> = (0u64..1000).map(|x| x * x).collect();
        assert_eq!(squares, expect);
    }

    #[test]
    fn par_iter_borrows() {
        let v: Vec<String> = (0..64).map(|i| format!("s{i}")).collect();
        let lens: Vec<usize> = v.par_iter().map(|s| s.len()).collect();
        assert_eq!(lens.len(), 64);
        assert_eq!(lens[0], 2);
        assert_eq!(lens[10], 3);
    }

    #[test]
    fn sum_matches_serial() {
        let total: u64 = (1u64..=100).collect::<Vec<_>>().into_par_iter().sum();
        assert_eq!(total, 5050);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x + 1).collect();
        assert!(out.is_empty());
    }
}
