//! Vendored, dependency-free shim of the slice of the `criterion` API this
//! workspace uses: [`Criterion::bench_function`], [`Bencher::iter`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! The workspace must build with no network access to crates.io, so the
//! root manifest patches `criterion` to this path. There is no statistical
//! analysis — each benchmark is warmed up, then timed over enough
//! iterations to fill a measurement window, and the mean ns/iter is
//! printed. `CRITERION_SHIM_QUICK=1` shrinks the windows for CI smoke
//! runs. Swapping in the real crate is a one-line change in the workspace
//! manifest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Times `f` (which receives a [`Bencher`]) and prints the result.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let quick = std::env::var("CRITERION_SHIM_QUICK").is_ok_and(|v| v == "1");
        let (warmup, window) = if quick {
            (Duration::from_millis(20), Duration::from_millis(100))
        } else {
            (Duration::from_millis(300), Duration::from_secs(1))
        };
        let mut b = Bencher {
            warmup,
            window,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = if b.iters == 0 {
            0.0
        } else {
            b.elapsed.as_nanos() as f64 / b.iters as f64
        };
        println!("{id:<40} {per_iter:>14.1} ns/iter ({} iters)", b.iters);
        self
    }
}

/// Times a single benchmark body over repeated iterations.
pub struct Bencher {
    warmup: Duration,
    window: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly: first for the warmup window, then timed.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        while start.elapsed() < self.warmup {
            std::hint::black_box(f());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.window {
            std::hint::black_box(f());
            iters += 1;
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }
}

/// Declares a group function running each listed benchmark in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        std::env::set_var("CRITERION_SHIM_QUICK", "1");
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran > 0);
    }
}
