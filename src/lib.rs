//! Umbrella crate for *The Energy Complexity of Broadcast* reproduction.
//!
//! Re-exports every sub-crate under one roof so downstream users (and the
//! repo-level `tests/` and `examples/`) can depend on a single crate:
//!
//! * [`radio`] — the discrete-slot radio-network simulator with exact
//!   energy metering ([`ebc_radio`]).
//! * [`graphs`] — deterministic and random topology generators
//!   ([`ebc_graphs`]).
//! * [`singlehop`] — single-hop (clique) leader-election building blocks
//!   ([`ebc_singlehop`]).
//! * [`core`] — the paper's broadcast algorithms and lower-bound
//!   reductions ([`ebc_core`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ebc_core as core;
pub use ebc_graphs as graphs;
pub use ebc_radio as radio;
pub use ebc_singlehop as singlehop;
