//! Integration tests for the substrates: single-hop primitives feeding the
//! multi-hop machinery, the LOCAL-simulation preprocessing, the clustering
//! pipeline, and the executable Theorem 2 reduction.

use ebc_core::cluster::{partition_beta, ClusterState};
use ebc_core::localsim::{build_tdma, is_two_hop_proper, learn_degree, two_hop_coloring};
use ebc_core::reduction::{run_reduction, DecayMiddle, UniformCdMiddle};
use ebc_core::srcomm::{det_sr, Sr};
use ebc_core::util::NodeRngs;
use ebc_graphs::deterministic::{complete, grid, k2k};
use ebc_graphs::random::bounded_degree;
use ebc_radio::rng::node_rng;
use ebc_radio::{Model, NodeId, Sim};
use ebc_singlehop::det::det_leader_election;
use ebc_singlehop::{run_uniform_le, Clique};

#[test]
fn single_hop_le_and_multi_hop_sr_share_the_schedule() {
    // The Lemma 8 SR-communication consumes exactly the uniform LE
    // schedule; verify both succeed under the same parameters.
    let delta = 64;
    let mut clique = Clique::new(delta, Model::Cd);
    let parts: Vec<NodeId> = (0..delta).collect();
    let mut rng = node_rng(5, 0, 1);
    let le = run_uniform_le(&mut clique, &parts, &mut rng, 500);
    assert!(le.leader.is_some());

    let g = ebc_graphs::deterministic::star(delta);
    let mut sim = Sim::new(g, Model::Cd, 5);
    let senders: Vec<(NodeId, u32)> = (1..=delta).map(|v| (v, v as u32)).collect();
    let sr = Sr::CdTransform {
        delta,
        epochs: 40,
        relevance_check: false,
    };
    let got = sr.run(
        &mut sim,
        &senders,
        &[0],
        &mut NodeRngs::new(5, delta + 1, 2),
    );
    assert!(got[0].is_some());
    // The hub's energy (one listen per epoch, stopping on success) is in
    // the same ballpark as the LE slot count — the reduction's other
    // direction.
    assert!(sim.meter().energy(0) <= 3 * le.slots + 30);
}

#[test]
fn tdma_preprocessing_enables_collision_free_srcomm() {
    let g = bounded_degree(48, 4, 1.5, 7);
    let mut sim = Sim::new(g.clone(), Model::NoCd, 3);
    let mut rngs = NodeRngs::new(3, 48, 1);
    let mut coins = NodeRngs::new(3, 48, 2);
    let knowledge = learn_degree(&mut sim, 8.0, &mut rngs);
    assert!(knowledge.complete(&g));
    let (colors, _) = two_hop_coloring(&mut sim, &knowledge, None, &mut rngs, &mut coins);
    assert!(is_two_hop_proper(&g, &colors));
}

#[test]
fn build_tdma_then_relay_across_the_graph() {
    let g = ebc_graphs::deterministic::cycle(24);
    let mut sim = Sim::new(g, Model::NoCd, 9);
    let mut rngs = NodeRngs::new(9, 24, 1);
    let mut coins = NodeRngs::new(9, 24, 2);
    let sr = build_tdma(&mut sim, &mut rngs, &mut coins);
    // Relay a token all the way around using only TDMA SR rounds.
    let mut has = [false; 24];
    has[0] = true;
    for _ in 0..24 {
        let senders: Vec<(NodeId, u8)> = (0..24).filter(|&v| has[v]).map(|v| (v, 1)).collect();
        let receivers: Vec<NodeId> = (0..24).filter(|&v| !has[v]).collect();
        let got = sr.run(&mut sim, &senders, &receivers, &mut rngs);
        for (i, &v) in receivers.iter().enumerate() {
            if got[i].is_some() {
                has[v] = true;
            }
        }
    }
    assert!(has.iter().all(|&b| b));
}

#[test]
fn partition_to_labeling_to_broadcast_pipeline() {
    // The §6 pipeline stages compose: cluster, then Lemma 10 over the
    // resulting labeling.
    let g = grid(8, 8);
    let mut sim = Sim::new(g.clone(), Model::Local, 17);
    let mut rngs = NodeRngs::new(17, 64, 1);
    let st = partition_beta(&mut sim, 0.25, &Sr::Local, &mut rngs);
    assert!(st.is_valid(&g));
    assert!(st.labeling.is_good(&g));
    let d = {
        let (cg, _) = st.cluster_graph(&g);
        cg.diameter_exact().unwrap_or(0)
    };
    let out = ebc_core::cast::broadcast_with_labeling(
        &mut sim,
        &st.labeling,
        0,
        64,
        d + 1,
        &Sr::Local,
        &mut rngs,
    );
    assert!(out.all_informed());
}

#[test]
fn cluster_state_analysis_consistency() {
    let g = grid(6, 6);
    let mut sim = Sim::new(g.clone(), Model::Local, 23);
    let mut rngs = NodeRngs::new(23, 36, 1);
    let st = partition_beta(&mut sim, 0.3, &Sr::Local, &mut rngs);
    let (cg, of) = st.cluster_graph(&g);
    assert_eq!(cg.n(), st.cluster_count());
    // Contracted graph is connected because G is.
    assert!(cg.is_connected());
    // Every vertex maps into range.
    assert!(of.iter().all(|&c| c < cg.n()));
    // Edge-cut fraction consistent with the contraction.
    let trivial = ClusterState::trivial(36);
    assert_eq!(trivial.edge_cut_fraction(&g), 1.0);
}

#[test]
fn reduction_derived_le_matches_direct_le_shape() {
    // The Theorem 2 reduction turns K_{2,k} broadcast into LE; its slot
    // count should scale like the direct single-hop LE of the same model.
    let k = 128;
    let runs = 10;
    let mut red_cd = 0u64;
    let mut direct_cd = 0u64;
    for seed in 0..runs {
        let (r, _) = run_reduction(k, Model::Cd, |_| UniformCdMiddle::new(k), seed, 5_000);
        assert!(r.leader.is_some());
        red_cd += r.slots;
        let mut clique = Clique::new(k, Model::Cd);
        let parts: Vec<NodeId> = (0..k).collect();
        let mut rng = node_rng(seed, 7, 3);
        let le = run_uniform_le(&mut clique, &parts, &mut rng, 5_000);
        assert!(le.leader.is_some());
        direct_cd += le.slots;
    }
    let ratio = red_cd as f64 / direct_cd as f64;
    assert!((0.2..=5.0).contains(&ratio), "ratio {ratio}");
}

#[test]
fn reduction_gadget_graph_is_what_theorem2_assumes() {
    let g = k2k(6);
    // s and t non-adjacent, all middles adjacent to both.
    assert!(!g.has_edge(0, 1));
    for m in 2..8 {
        assert!(g.has_edge(0, m) && g.has_edge(1, m));
    }
    // And the reduction machinery elects a leader among exactly k middles.
    let (res, _) = run_reduction(6, Model::NoCd, |_| DecayMiddle::new(6), 3, 2_000);
    assert!(matches!(res.leader, Some(l) if l < 6));
}

#[test]
fn det_sr_and_det_le_compose() {
    // Deterministic primitives: LE on a clique picks the max-ID candidate;
    // det SR on a star learns the min message — both with zero failure.
    let n = 32;
    let mut clique = Clique::new(n, Model::Cd);
    let ids: Vec<u64> = (0..n).map(|v| v as u64 + 1).collect();
    let cands: Vec<NodeId> = (0..n).step_by(5).collect();
    let le = det_leader_election(&mut clique, &cands, &ids, n as u64);
    assert_eq!(le.leader, 30);

    let g = ebc_graphs::deterministic::star(8);
    let mut sim = Sim::new(g, Model::Cd, 0);
    let senders: Vec<(NodeId, u64)> = (1..=8).map(|v| (v, 20 - v as u64)).collect();
    let got = det_sr(&mut sim, &senders, &[0], 32);
    assert_eq!(got[0], Some(12));
}

#[test]
fn clique_behaves_like_complete_graph_sim() {
    // The fast single-hop channel must agree with the general simulator on
    // a complete graph.
    let n = 6;
    let g = complete(n);
    let mut sim = Sim::new(g, Model::Cd, 0);
    let mut fb_sim = Vec::new();
    let mut b = ebc_radio::from_fns(
        |v, _| {
            if v < 2 {
                ebc_radio::Action::Send(v as u8)
            } else {
                ebc_radio::Action::Listen
            }
        },
        |v, _, fb: ebc_radio::Feedback<u8>| fb_sim.push((v, fb)),
    );
    sim.run(&(0..n).collect::<Vec<_>>(), 1, &mut b);
    drop(b);

    let mut clique = Clique::new(n, Model::Cd);
    let actions: Vec<(NodeId, ebc_radio::Action<u8>)> = (0..n)
        .map(|v| {
            if v < 2 {
                (v, ebc_radio::Action::Send(v as u8))
            } else {
                (v, ebc_radio::Action::Listen)
            }
        })
        .collect();
    let fb_clique = clique.slot(&actions);
    assert_eq!(fb_sim, fb_clique);
}
