//! Cross-crate integration tests: every broadcast algorithm of the paper,
//! on every applicable topology family, must inform all vertices — and the
//! measured costs must sit in the regime the paper's Table 1 predicts.

use ebc_core::baseline::{bgi_decay_broadcast, flood_local};
use ebc_core::cdfast::{broadcast_theorem20, Theorem20Config};
use ebc_core::cluster::{broadcast_theorem16, Theorem16Config};
use ebc_core::det::{broadcast_det_cd, broadcast_det_local, DetCdConfig, DetLocalConfig};
use ebc_core::path::{path_broadcast, PathConfig};
use ebc_core::randomized::{
    broadcast_corollary13, broadcast_theorem11, broadcast_theorem12, Theorem11Config,
    Theorem12Config,
};
use ebc_graphs::families::Family;
use ebc_radio::{Model, Sim};

const FAMILIES: [Family; 6] = [
    Family::Path,
    Family::Cycle,
    Family::Grid,
    Family::BoundedDeg4,
    Family::GnpAvgDeg8,
    Family::ClusterChain8,
];

#[test]
fn theorem11_informs_everyone_across_families_and_models() {
    for fam in FAMILIES {
        for model in [Model::Local, Model::NoCd, Model::Cd] {
            let inst = fam.instance(48, 11);
            let mut sim = Sim::new(inst.graph, model, 5);
            let out = broadcast_theorem11(&mut sim, 0, &Theorem11Config::default());
            assert!(out.all_informed(), "{} / {model}", inst.name);
        }
    }
}

#[test]
fn theorem12_informs_everyone_across_families() {
    for fam in FAMILIES {
        let inst = fam.instance(40, 3);
        let mut sim = Sim::new(inst.graph, Model::Cd, 9);
        let out = broadcast_theorem12(&mut sim, 1, &Theorem12Config::default());
        assert!(out.all_informed(), "{}", inst.name);
    }
}

#[test]
fn theorem16_informs_everyone_on_long_diameter_graphs() {
    for fam in [Family::Cycle, Family::Ladder, Family::Grid] {
        let inst = fam.instance(64, 5);
        let mut sim = Sim::new(inst.graph, Model::NoCd, 31);
        let cfg = Theorem16Config {
            beta_override: Some(0.3),
            ..Theorem16Config::default()
        };
        let out = broadcast_theorem16(&mut sim, 0, &cfg);
        assert!(out.all_informed(), "{}", inst.name);
    }
}

#[test]
fn theorem20_informs_everyone() {
    for fam in [Family::Path, Family::Grid, Family::BoundedDeg4] {
        let inst = fam.instance(32, 8);
        let mut sim = Sim::new(inst.graph, Model::Cd, 21);
        let out = broadcast_theorem20(&mut sim, 0, &Theorem20Config::default());
        assert!(out.all_informed(), "{}", inst.name);
    }
}

#[test]
fn corollary13_beats_decay_energy_on_constant_degree() {
    // Corollary 13's whole point: on Δ = O(1) graphs the TDMA pipeline has
    // O(log n) energy, beating the O(log Δ log² n) generic pipeline.
    let inst = Family::Cycle.instance(192, 0);
    let mut tdma = Sim::new(inst.graph.clone(), Model::NoCd, 4);
    assert!(broadcast_corollary13(&mut tdma, 0).all_informed());
    let mut generic = Sim::new(inst.graph, Model::NoCd, 4);
    assert!(broadcast_theorem11(&mut generic, 0, &Theorem11Config::default()).all_informed());
    assert!(
        tdma.meter().max_energy() < generic.meter().max_energy(),
        "tdma {} !< generic {}",
        tdma.meter().max_energy(),
        generic.meter().max_energy()
    );
}

#[test]
fn deterministic_algorithms_inform_everyone() {
    for fam in [Family::Path, Family::Cycle, Family::Grid, Family::Star] {
        let inst = fam.instance(24, 1);
        let mut sim = Sim::new(inst.graph.clone(), Model::Local, 0);
        assert!(
            broadcast_det_local(&mut sim, 0, &DetLocalConfig::default()).all_informed(),
            "det local / {}",
            inst.name
        );
        let mut sim = Sim::new(inst.graph, Model::Cd, 0);
        assert!(
            broadcast_det_cd(&mut sim, 0, &DetCdConfig::default()).all_informed(),
            "det cd / {}",
            inst.name
        );
    }
}

#[test]
fn energy_hierarchy_matches_table1_on_cycles() {
    // Shape test, not absolute-constant test (the paper's bounds are
    // asymptotic): on cycles, LOCAL energy < No-CD energy at a fixed size,
    // and the BGI baseline's energy grows linearly in n while Theorem 11's
    // grows polylogarithmically — so BGI's growth *ratio* between two sizes
    // must be much larger.
    let energy_t11 = |n: usize, model: Model| -> u64 {
        let g = ebc_graphs::deterministic::cycle(n);
        let mut sim = Sim::new(g, model, 13);
        assert!(broadcast_theorem11(&mut sim, 0, &Theorem11Config::default()).all_informed());
        sim.meter().max_energy()
    };
    let energy_bgi = |n: usize| -> u64 {
        let g = ebc_graphs::deterministic::cycle(n);
        let mut sim = Sim::new(g, Model::NoCd, 13);
        assert!(bgi_decay_broadcast(&mut sim, 0, None).all_informed());
        sim.meter().max_energy()
    };
    assert!(
        energy_t11(128, Model::Local) < energy_t11(128, Model::NoCd),
        "LOCAL should be cheaper than No-CD"
    );
    let t11_growth = energy_t11(512, Model::NoCd) as f64 / energy_t11(128, Model::NoCd) as f64;
    let bgi_growth = energy_bgi(512) as f64 / energy_bgi(128) as f64;
    assert!(
        t11_growth < 2.5 && bgi_growth > 2.5,
        "growth 128→512: t11 {t11_growth:.2} (polylog) vs bgi {bgi_growth:.2} (linear)"
    );
}

#[test]
fn flood_time_is_diameter_but_energy_is_not_constant() {
    let inst = Family::Path.instance(100, 0);
    let mut sim = Sim::new(inst.graph, Model::Local, 0);
    let out = flood_local(&mut sim, 0);
    assert!(out.all_informed());
    assert_eq!(sim.now(), 100);
    assert!(sim.meter().max_energy() > 50);
}

#[test]
fn path_algorithm_full_pipeline() {
    for seed in 0..5 {
        let (stats, engine) = path_broadcast(256, 128, &PathConfig::default(), seed);
        assert!(stats.all_informed, "seed {seed}");
        // Time within a constant of n even from the middle.
        assert!(stats.delivery_time <= 3 * 256);
        // Mean energy logarithmic.
        assert!(engine.meter().report().mean <= 10.0 * 8.0);
    }
}

#[test]
fn sources_other_than_zero_work_everywhere() {
    let inst = Family::Grid.instance(49, 2);
    let n = inst.graph.n();
    for src in [1, n / 2, n - 1] {
        let mut sim = Sim::new(inst.graph.clone(), Model::NoCd, 3);
        assert!(
            broadcast_theorem11(&mut sim, src, &Theorem11Config::default()).all_informed(),
            "source {src}"
        );
    }
}
