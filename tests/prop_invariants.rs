//! Property-based tests (proptest) on the core data structures and
//! invariants: channel semantics, graph construction, good labelings,
//! deterministic SR exactness, and clustering validity.

use ebc_core::cast::relabel;
use ebc_core::cluster::partition_beta;
use ebc_core::labeling::Labeling;
use ebc_core::srcomm::{det_sr, Sr};
use ebc_core::util::NodeRngs;
use ebc_radio::{resolve, Feedback, Graph, Model, NodeId, Sim};
use proptest::prelude::*;

/// Random connected graph strategy: a random tree plus random extra edges.
fn connected_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..max_n, any::<u64>(), 0..30usize).prop_map(|(n, seed, extra)| {
        let tree = ebc_graphs::random::random_tree(n, seed);
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for u in 0..n {
            for v in tree.neighbors(u) {
                if u < v {
                    edges.push((u, v));
                }
            }
        }
        let mut x = seed;
        for _ in 0..extra {
            x = ebc_radio::rng::splitmix64(x);
            let u = (x % n as u64) as usize;
            x = ebc_radio::rng::splitmix64(x);
            let v = (x % n as u64) as usize;
            if u != v {
                edges.push((u.min(v), u.max(v)));
            }
        }
        Graph::from_edges(n, &edges).expect("valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn resolve_matches_naive_semantics(
        senders in proptest::collection::vec((0usize..20, 0u8..255), 0..6),
        model_idx in 0usize..5,
    ) {
        let model = Model::ALL[model_idx];
        let mut uniq: Vec<(NodeId, u8)> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for (v, m) in senders {
            if seen.insert(v) {
                uniq.push((v, m));
            }
        }
        uniq.sort_by_key(|(v, _)| *v);
        let fb = resolve(model, uniq.clone().into_iter());
        match (model, uniq.len()) {
            (_, 0) => prop_assert_eq!(fb, Feedback::Silence),
            (Model::Beep, _) => prop_assert_eq!(fb, Feedback::Beep),
            (Model::Local, _) => {
                let msgs: Vec<u8> = uniq.iter().map(|(_, m)| *m).collect();
                prop_assert_eq!(fb, Feedback::Many(msgs));
            }
            (_, 1) => prop_assert_eq!(fb, Feedback::One(uniq[0].1)),
            (Model::NoCd, _) => prop_assert_eq!(fb, Feedback::Silence),
            (Model::Cd, _) => prop_assert_eq!(fb, Feedback::Noise),
            (Model::CdStar, _) => prop_assert_eq!(fb, Feedback::One(uniq[0].1)),
        }
    }

    #[test]
    fn graph_construction_is_symmetric_and_simple(
        n in 2usize..40,
        edges in proptest::collection::vec((0usize..40, 0usize..40), 0..80),
    ) {
        let filtered: Vec<(usize, usize)> = edges
            .into_iter()
            .filter(|&(u, v)| u < n && v < n && u != v)
            .collect();
        let g = Graph::from_edges(n, &filtered).expect("valid");
        for u in 0..n {
            for v in g.neighbors(u) {
                prop_assert!(g.has_edge(v, u));
                prop_assert_ne!(u, v);
            }
            // Sorted, deduplicated neighbor lists.
            let nb: Vec<NodeId> = g.neighbors(u).collect();
            let mut sorted = nb.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(nb, sorted);
        }
    }

    #[test]
    fn bfs_satisfies_edge_lipschitz(g in connected_graph(24)) {
        let dist = g.bfs(0);
        for u in 0..g.n() {
            for v in g.neighbors(u) {
                prop_assert!(dist[u].abs_diff(dist[v]) <= 1, "edge ({u},{v})");
            }
        }
    }

    #[test]
    fn double_sweep_is_exact_on_trees(n in 2usize..40, seed in any::<u64>()) {
        let g = ebc_graphs::random::random_tree(n, seed);
        prop_assert_eq!(g.diameter_double_sweep(), g.diameter_exact());
    }

    #[test]
    fn bfs_labeling_of_any_connected_graph_is_good(g in connected_graph(24)) {
        let dist = g.bfs(0);
        let l = Labeling::from_labels(dist);
        prop_assert!(l.is_good(&g));
        prop_assert_eq!(l.layer0_count(), 1);
    }

    #[test]
    fn relabel_preserves_goodness_and_shrinks(
        g in connected_graph(20),
        seed in any::<u64>(),
        p in 0.1f64..0.9,
    ) {
        let n = g.n();
        let mut sim = Sim::new(g.clone(), Model::Local, seed);
        let mut rngs = NodeRngs::new(seed, n, 1);
        let mut coins = NodeRngs::new(seed, n, 2);
        let l0 = Labeling::all_zero(n);
        let l1 = relabel(&mut sim, &l0, p, 1, n as u32, &Sr::Local, &mut rngs, &mut coins);
        prop_assert!(l1.is_good(&g), "labels {:?}", l1.labels());
        prop_assert!(l1.layer0_count() <= l0.layer0_count());
        let l2 = relabel(&mut sim, &l1, p, 1, n as u32, &Sr::Local, &mut rngs, &mut coins);
        prop_assert!(l2.is_good(&g), "labels {:?}", l2.labels());
        prop_assert!(l2.layer0_count() <= l1.layer0_count());
    }

    #[test]
    fn det_sr_is_exactly_min_over_closed_neighborhood(
        g in connected_graph(16),
        msgs in proptest::collection::vec(proptest::option::of(0u64..64), 16),
    ) {
        let n = g.n();
        let senders: Vec<(NodeId, u64)> = (0..n)
            .filter_map(|v| msgs.get(v).copied().flatten().map(|m| (v, m)))
            .collect();
        let receivers: Vec<NodeId> = (0..n).collect();
        let mut sim = Sim::new(g.clone(), Model::Cd, 1);
        let got = det_sr(&mut sim, &senders, &receivers, 64);
        let sender_map: std::collections::HashMap<NodeId, u64> =
            senders.iter().cloned().collect();
        for (i, &v) in receivers.iter().enumerate() {
            let expect = std::iter::once(v)
                .chain(g.neighbors(v))
                .filter_map(|u| sender_map.get(&u).copied())
                .min();
            prop_assert_eq!(got[i], expect, "vertex {}", v);
        }
    }

    #[test]
    fn partition_beta_always_yields_valid_clustering(
        g in connected_graph(24),
        seed in any::<u64>(),
        beta_pct in 10u32..45,
    ) {
        let beta = beta_pct as f64 / 100.0;
        let n = g.n();
        let mut sim = Sim::new(g.clone(), Model::Local, seed);
        let mut rngs = NodeRngs::new(seed, n, 3);
        let st = partition_beta(&mut sim, beta, &Sr::Local, &mut rngs);
        prop_assert!(st.is_valid(&g));
        prop_assert!(st.labeling.is_good(&g));
        // Every vertex belongs to the cluster of an actual center.
        for v in 0..n {
            let c = st.cid[v] as usize;
            prop_assert_eq!(st.cid[c], st.cid[v]);
            prop_assert_eq!(st.labeling.label(c), 0);
        }
    }

    #[test]
    fn decay_sr_never_fabricates_messages(
        g in connected_graph(16),
        sender_mask in proptest::collection::vec(any::<bool>(), 16),
        seed in any::<u64>(),
    ) {
        let n = g.n();
        let senders: Vec<(NodeId, u32)> = (0..n)
            .filter(|&v| sender_mask.get(v).copied().unwrap_or(false))
            .map(|v| (v, v as u32))
            .collect();
        let receivers: Vec<NodeId> = (0..n)
            .filter(|&v| !sender_mask.get(v).copied().unwrap_or(false))
            .collect();
        let mut sim = Sim::new(g.clone(), Model::NoCd, seed);
        let sr = Sr::Decay { delta: g.max_degree().max(1), sweeps: 6 };
        let got = sr.run(&mut sim, &senders, &receivers, &mut NodeRngs::new(seed, n, 4));
        let sender_set: std::collections::HashSet<NodeId> =
            senders.iter().map(|(v, _)| *v).collect();
        for (i, &v) in receivers.iter().enumerate() {
            if let Some(m) = got[i] {
                // The message names its sender; it must be a real S-neighbor.
                let u = m as NodeId;
                prop_assert!(sender_set.contains(&u));
                prop_assert!(g.has_edge(v, u), "{} heard non-neighbor {}", v, u);
            }
        }
    }

    #[test]
    fn energy_meter_totals_are_consistent(
        charges in proptest::collection::vec((0usize..8, any::<bool>(), 0u64..1000), 0..50),
    ) {
        let mut meter = ebc_radio::EnergyMeter::new(8);
        let mut max_slot = None;
        for (v, is_send, t) in &charges {
            if *is_send {
                meter.charge_send(*v, *t);
            } else {
                meter.charge_listen(*v, *t);
            }
            max_slot = Some(max_slot.map_or(*t, |m: u64| m.max(*t)));
        }
        prop_assert_eq!(meter.total_energy(), charges.len() as u64);
        prop_assert_eq!(meter.last_active(), max_slot);
        let sum: u64 = (0..8).map(|v| meter.energy(v)).sum();
        prop_assert_eq!(sum, charges.len() as u64);
        prop_assert!(meter.max_energy() <= meter.total_energy());
    }
}
